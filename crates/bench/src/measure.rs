//! Timed page loads, event dispatches and policy-decision throughput.

use escudo_browser::{Browser, PolicyMode};
use escudo_core::context::{ObjectContext, PrincipalContext};
use escudo_core::{EscudoEngine, Operation, PolicyEngine, SameOriginEngine};
use escudo_dom::EventType;
use escudo_net::{Request, Response};

use crate::workload::DecisionCheck;

/// The timing sample of one page load.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadSample {
    /// Parse time in nanoseconds.
    pub parse_ns: u128,
    /// ESCUDO bookkeeping (label extraction) time in nanoseconds.
    pub label_ns: u128,
    /// Script execution time in nanoseconds.
    pub script_ns: u128,
    /// Layout/render time in nanoseconds.
    pub render_ns: u128,
    /// Subresource fetches dispatched during the load.
    pub subresource_requests: u64,
    /// Cookie-`use` denials issued while mediating the load's subresources.
    pub subresource_denials: u64,
    /// Wall-clock time of the subresource fetch fan-out, in nanoseconds
    /// (overlapped time under the pipelined loader).
    pub subresource_fetch_ns: u128,
}

impl LoadSample {
    /// The quantity Figure 4 plots: parse + ESCUDO bookkeeping + render.
    #[must_use]
    pub fn parse_and_render_ns(&self) -> u128 {
        self.parse_ns + self.label_ns + self.render_ns
    }
}

/// Loads `html` once in a fresh browser under `mode` and returns the timing sample.
#[must_use]
pub fn load_once(mode: PolicyMode, html: &str) -> LoadSample {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser
        .navigate("http://workload.example/")
        .expect("workload page loads");
    let stats = browser.page(page).stats;
    LoadSample {
        parse_ns: stats.parse_ns,
        label_ns: stats.label_ns,
        script_ns: stats.script_ns,
        render_ns: stats.render_ns,
        subresource_requests: stats.subresource_requests,
        subresource_denials: stats.subresource_denials,
        subresource_fetch_ns: stats.subresource_fetch_ns,
    }
}

/// Statistics over repeated samples of one quantity (nanoseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Number of samples.
    pub runs: usize,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds (robust against scheduler noise on sub-millisecond loads).
    pub median_ns: u128,
    /// Minimum in nanoseconds.
    pub min_ns: u128,
    /// Maximum in nanoseconds.
    pub max_ns: u128,
}

impl SampleStats {
    /// Computes statistics from raw samples.
    #[must_use]
    pub fn from_samples(samples: &[u128]) -> Self {
        if samples.is_empty() {
            return SampleStats::default();
        }
        let sum: u128 = samples.iter().sum();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        SampleStats {
            runs: samples.len(),
            mean_ns: sum as f64 / samples.len() as f64,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("non-empty"),
        }
    }

    /// Mean in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1_000_000.0
    }

    /// Median in milliseconds.
    #[must_use]
    pub fn median_ms(&self) -> f64 {
        self.median_ns as f64 / 1_000_000.0
    }
}

/// Measures the parse+render time of `html` over `runs` loads under `mode`.
#[must_use]
pub fn measure_parse_render(mode: PolicyMode, html: &str, runs: usize) -> SampleStats {
    let samples: Vec<u128> = (0..runs)
        .map(|_| load_once(mode, html).parse_and_render_ns())
        .collect();
    SampleStats::from_samples(&samples)
}

/// Measures UI-event dispatch time: fires `click` on a handler-carrying element `runs`
/// times and reports per-dispatch statistics.
#[must_use]
pub fn measure_event_dispatch(
    mode: PolicyMode,
    html: &str,
    element_id: &str,
    runs: usize,
) -> SampleStats {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser
        .navigate("http://workload.example/")
        .expect("workload page loads");
    let samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            let _ = browser.fire_event(page, element_id, EventType::Click);
            start.elapsed().as_nanos()
        })
        .collect();
    SampleStats::from_samples(&samples)
}

/// Cold-vs-cached decision throughput of the [`EscudoEngine`], plus the baselines.
///
/// * `cold` — every context pair seen for the first time: interning inserts, full
///   origin/ring/ACL evaluation, cache fill,
/// * `cached` — the same checks repeated against the warm engine: interner and
///   decision cache hits only,
/// * `free_fn` — the raw `escudo_core::policy::decide` free function (no engine),
/// * `sop` — the [`SameOriginEngine`] baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionReport {
    /// Number of checks in the workload.
    pub checks: usize,
    /// Nanoseconds per decision on the cold (first-touch) path.
    pub cold_ns: f64,
    /// Nanoseconds per decision on the cached (warm) path.
    pub cached_ns: f64,
    /// Nanoseconds per decision through the raw free function.
    pub free_fn_ns: f64,
    /// Nanoseconds per decision through the same-origin baseline engine.
    pub sop_ns: f64,
    /// Nanoseconds per decision for `decide_many` batches on the warm engine.
    pub batch_cached_ns: f64,
    /// Cache hit rate observed on the warm engine after all passes.
    pub hit_rate: f64,
}

impl DecisionReport {
    /// Cold-to-cached speedup (how much repeated identical checks gain).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.cached_ns > 0.0 {
            self.cold_ns / self.cached_ns
        } else {
            0.0
        }
    }

    /// Decisions per second for a per-decision cost in nanoseconds.
    #[must_use]
    pub fn per_second(ns: f64) -> f64 {
        if ns > 0.0 {
            1.0e9 / ns
        } else {
            0.0
        }
    }
}

fn ns_per_check(checks: usize, f: impl FnOnce()) -> f64 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / checks.max(1) as f64
}

/// Measures cold vs cached decision throughput over `workload`, taking the best of
/// `passes` timed repetitions for every warm path (the cold path is timed exactly
/// once per fresh engine — that is what makes it cold).
#[must_use]
pub fn measure_decision_paths(workload: &[DecisionCheck], passes: usize) -> DecisionReport {
    let passes = passes.max(1);
    let n = workload.len();

    // Cold: median over `passes` fresh engines, each timed on its very first pass.
    let mut cold_samples: Vec<f64> = (0..passes)
        .map(|_| {
            let engine = EscudoEngine::new();
            ns_per_check(n, || {
                for (p, o, op) in workload {
                    std::hint::black_box(engine.decide(p, o, *op));
                }
            })
        })
        .collect();
    cold_samples.sort_by(f64::total_cmp);
    let cold_ns = cold_samples[cold_samples.len() / 2];

    // Cached: one engine, warmed by a full pass, then the best of `passes` passes.
    let engine = EscudoEngine::new();
    for (p, o, op) in workload {
        std::hint::black_box(engine.decide(p, o, *op));
    }
    let cached_ns = (0..passes)
        .map(|_| {
            ns_per_check(n, || {
                for (p, o, op) in workload {
                    std::hint::black_box(engine.decide(p, o, *op));
                }
            })
        })
        .fold(f64::INFINITY, f64::min);

    // Batch mediation on the same warm engine.
    let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> =
        workload.iter().map(|(p, o, op)| (p, o, *op)).collect();
    let batch_cached_ns = (0..passes)
        .map(|_| {
            ns_per_check(n, || {
                std::hint::black_box(engine.decide_many(&batch)).clear()
            })
        })
        .fold(f64::INFINITY, f64::min);

    // Raw free function.
    let free_fn_ns = (0..passes)
        .map(|_| {
            ns_per_check(n, || {
                for (p, o, op) in workload {
                    std::hint::black_box(escudo_core::decide(PolicyMode::Escudo, p, o, *op));
                }
            })
        })
        .fold(f64::INFINITY, f64::min);

    // Same-origin baseline engine.
    let sop = SameOriginEngine::new();
    let sop_ns = (0..passes)
        .map(|_| {
            ns_per_check(n, || {
                for (p, o, op) in workload {
                    std::hint::black_box(sop.decide(p, o, *op));
                }
            })
        })
        .fold(f64::INFINITY, f64::min);

    DecisionReport {
        checks: n,
        cold_ns,
        cached_ns,
        free_fn_ns,
        sop_ns,
        batch_cached_ns,
        hit_rate: engine.stats().hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{decision_workload, figure4_scenarios, generate_page};

    #[test]
    fn load_once_produces_nonzero_timings() {
        let html = generate_page(&figure4_scenarios()[2]);
        let escudo = load_once(PolicyMode::Escudo, &html);
        assert!(escudo.parse_ns > 0);
        assert!(escudo.render_ns > 0);
        assert!(escudo.label_ns > 0);
        let sop = load_once(PolicyMode::SameOriginOnly, &html);
        // The baseline browser does no ESCUDO bookkeeping at all.
        assert_eq!(sop.label_ns, 0);
    }

    #[test]
    fn sample_stats_summarize_correctly() {
        let stats = SampleStats::from_samples(&[10, 20, 30]);
        assert_eq!(stats.runs, 3);
        assert!((stats.mean_ns - 20.0).abs() < f64::EPSILON);
        assert_eq!(stats.min_ns, 10);
        assert_eq!(stats.max_ns, 30);
        assert_eq!(SampleStats::from_samples(&[]).runs, 0);
    }

    #[test]
    fn event_dispatch_measurement_runs() {
        let html = generate_page(&figure4_scenarios()[1]);
        let stats = measure_event_dispatch(PolicyMode::Escudo, &html, "action-0", 5);
        assert_eq!(stats.runs, 5);
        assert!(stats.mean_ns > 0.0);
    }

    #[test]
    fn decision_paths_are_measured_and_cache_hits_observed() {
        let workload = decision_workload(8, 8);
        let report = measure_decision_paths(&workload, 3);
        assert_eq!(report.checks, 64);
        assert!(report.cold_ns > 0.0);
        assert!(report.cached_ns > 0.0);
        assert!(report.free_fn_ns > 0.0);
        assert!(report.batch_cached_ns > 0.0);
        // After warm-up every pass hits the cache.
        assert!(report.hit_rate > 0.5, "hit rate: {}", report.hit_rate);
    }
}
