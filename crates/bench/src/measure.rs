//! Timed page loads and event dispatches.

use escudo_browser::{Browser, PolicyMode};
use escudo_dom::EventType;
use escudo_net::{Request, Response};
use serde::{Deserialize, Serialize};

/// The timing sample of one page load.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LoadSample {
    /// Parse time in nanoseconds.
    pub parse_ns: u128,
    /// ESCUDO bookkeeping (label extraction) time in nanoseconds.
    pub label_ns: u128,
    /// Script execution time in nanoseconds.
    pub script_ns: u128,
    /// Layout/render time in nanoseconds.
    pub render_ns: u128,
}

impl LoadSample {
    /// The quantity Figure 4 plots: parse + ESCUDO bookkeeping + render.
    #[must_use]
    pub fn parse_and_render_ns(&self) -> u128 {
        self.parse_ns + self.label_ns + self.render_ns
    }
}

/// Loads `html` once in a fresh browser under `mode` and returns the timing sample.
#[must_use]
pub fn load_once(mode: PolicyMode, html: &str) -> LoadSample {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser
        .navigate("http://workload.example/")
        .expect("workload page loads");
    let stats = browser.page(page).stats;
    LoadSample {
        parse_ns: stats.parse_ns,
        label_ns: stats.label_ns,
        script_ns: stats.script_ns,
        render_ns: stats.render_ns,
    }
}

/// Statistics over repeated samples of one quantity (nanoseconds).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples.
    pub runs: usize,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds (robust against scheduler noise on sub-millisecond loads).
    pub median_ns: u128,
    /// Minimum in nanoseconds.
    pub min_ns: u128,
    /// Maximum in nanoseconds.
    pub max_ns: u128,
}

impl SampleStats {
    /// Computes statistics from raw samples.
    #[must_use]
    pub fn from_samples(samples: &[u128]) -> Self {
        if samples.is_empty() {
            return SampleStats::default();
        }
        let sum: u128 = samples.iter().sum();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        SampleStats {
            runs: samples.len(),
            mean_ns: sum as f64 / samples.len() as f64,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("non-empty"),
        }
    }

    /// Mean in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1_000_000.0
    }

    /// Median in milliseconds.
    #[must_use]
    pub fn median_ms(&self) -> f64 {
        self.median_ns as f64 / 1_000_000.0
    }
}

/// Measures the parse+render time of `html` over `runs` loads under `mode`.
#[must_use]
pub fn measure_parse_render(mode: PolicyMode, html: &str, runs: usize) -> SampleStats {
    let samples: Vec<u128> = (0..runs)
        .map(|_| load_once(mode, html).parse_and_render_ns())
        .collect();
    SampleStats::from_samples(&samples)
}

/// Measures UI-event dispatch time: fires `click` on a handler-carrying element `runs`
/// times and reports per-dispatch statistics.
#[must_use]
pub fn measure_event_dispatch(mode: PolicyMode, html: &str, element_id: &str, runs: usize) -> SampleStats {
    let mut browser = Browser::new(mode);
    let page_html = html.to_string();
    browser
        .network_mut()
        .register("http://workload.example", move |_req: &Request| {
            Response::ok_html(page_html.clone())
        });
    let page = browser
        .navigate("http://workload.example/")
        .expect("workload page loads");
    let samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            let _ = browser.fire_event(page, element_id, EventType::Click);
            start.elapsed().as_nanos()
        })
        .collect();
    SampleStats::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{figure4_scenarios, generate_page};

    #[test]
    fn load_once_produces_nonzero_timings() {
        let html = generate_page(&figure4_scenarios()[2]);
        let escudo = load_once(PolicyMode::Escudo, &html);
        assert!(escudo.parse_ns > 0);
        assert!(escudo.render_ns > 0);
        assert!(escudo.label_ns > 0);
        let sop = load_once(PolicyMode::SameOriginOnly, &html);
        // The baseline browser does no ESCUDO bookkeeping at all.
        assert_eq!(sop.label_ns, 0);
    }

    #[test]
    fn sample_stats_summarize_correctly() {
        let stats = SampleStats::from_samples(&[10, 20, 30]);
        assert_eq!(stats.runs, 3);
        assert!((stats.mean_ns - 20.0).abs() < f64::EPSILON);
        assert_eq!(stats.min_ns, 10);
        assert_eq!(stats.max_ns, 30);
        assert_eq!(SampleStats::from_samples(&[]).runs, 0);
    }

    #[test]
    fn event_dispatch_measurement_runs() {
        let html = generate_page(&figure4_scenarios()[1]);
        let stats = measure_event_dispatch(PolicyMode::Escudo, &html, "action-0", 5);
        assert_eq!(stats.runs, 5);
        assert!(stats.mean_ns > 0.0);
    }
}
