//! Thin CLI wrapper over [`escudo_bench::trajectory::run_comparator`]: diffs a
//! freshly measured merged bench report against the committed trajectory
//! snapshot and exits non-zero when a gated metric regressed.
//!
//! ```text
//! cargo run -p escudo-bench --bin trajectory -- \
//!     --previous BENCH_6.json --current bench-json/merged.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().collect();
    std::process::exit(escudo_bench::trajectory::run_comparator(&args));
}
