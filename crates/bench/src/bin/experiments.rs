//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release --bin experiments              # everything, 90 runs (the paper's count)
//! cargo run --release --bin experiments figure4      # only Figure 4
//! cargo run --release --bin experiments defense      # only §6.4
//! cargo run --release --bin experiments matrix       # only the scenario matrix
//! cargo run --release --bin experiments -- --runs 30 # fewer timed runs
//! cargo run --release --bin experiments -- --raw     # machine-readable (Debug) output
//! ```

use std::env;

use escudo_apps::evaluate::DefenseReport;
use escudo_apps::scenario::MatrixReport;
use escudo_bench::experiments::{
    format_case_study_tables, format_defense_report, format_matrix_report, format_table1,
    CompatReport, EventReport, Figure4Report,
};

#[derive(Debug)]
struct Options {
    runs: usize,
    raw: bool,
    sections: Vec<String>,
}

fn parse_args() -> Options {
    let mut options = Options {
        runs: 90,
        raw: false,
        sections: Vec::new(),
    };
    let mut args = env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                if let Some(value) = args.next() {
                    options.runs = value.parse().unwrap_or(90);
                }
            }
            "--raw" => options.raw = true,
            "--json" => {
                eprintln!(
                    "--json was removed (no JSON serializer in this build); \
                     use --raw for machine-readable Debug output"
                );
                std::process::exit(2);
            }
            "--" => {}
            section => options.sections.push(section.to_string()),
        }
    }
    if options.sections.is_empty() {
        options.sections = vec![
            "taxonomy".to_string(),
            "tables".to_string(),
            "figure4".to_string(),
            "events".to_string(),
            "defense".to_string(),
            "matrix".to_string(),
            "compat".to_string(),
        ];
    }
    options
}

fn main() {
    let options = parse_args();

    for section in &options.sections {
        match section.as_str() {
            "taxonomy" | "table1" => {
                println!("{}", format_table1());
            }
            "tables" => {
                println!("{}", format_case_study_tables());
            }
            "figure4" => {
                let report = Figure4Report::run(options.runs);
                if options.raw {
                    println!("{report:#?}");
                } else {
                    println!("{report}");
                }
            }
            "events" => {
                let report = EventReport::run(options.runs.max(100));
                if options.raw {
                    println!("{report:#?}");
                } else {
                    println!("{report}");
                }
            }
            "defense" => {
                let report = DefenseReport::run_full();
                if options.raw {
                    println!("{report:#?}");
                } else {
                    println!("{}", format_defense_report(&report));
                }
            }
            "matrix" => {
                let report = MatrixReport::run_registry();
                if options.raw {
                    println!("{report:#?}");
                } else {
                    println!("{}", format_matrix_report(&report));
                }
            }
            "compat" => {
                let report = CompatReport::run();
                if options.raw {
                    println!("{report:#?}");
                } else {
                    println!("{report}");
                }
            }
            other => {
                eprintln!("unknown section `{other}` (expected taxonomy, tables, figure4, events, defense, matrix, compat)");
                std::process::exit(2);
            }
        }
        println!();
    }
}
