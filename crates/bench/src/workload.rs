//! The Figure 4 workload generator.
//!
//! The paper: "We setup 8 web pages varying amounts of AC tags and dynamic content. To
//! measure the overhead we compared the time taken for parsing and rendering the 8
//! pages and averaged the rendering time over 90 executions." The scenarios below span
//! a small static page up to a large page with many AC-tagged user regions, several
//! inline scripts and event handlers.

use escudo_apps::markup::AcMarkup;
use escudo_core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
use escudo_core::{Acl, Operation, Origin, Ring};

/// One Figure 4 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario index (1-based, matching the figure's x axis).
    pub id: usize,
    /// Short description.
    pub name: &'static str,
    /// Number of AC-tagged user-content regions.
    pub ac_regions: usize,
    /// Paragraphs of text inside each region.
    pub paragraphs_per_region: usize,
    /// Words per paragraph.
    pub words_per_paragraph: usize,
    /// Number of inline application scripts (dynamic content).
    pub scripts: usize,
    /// Number of elements carrying inline event handlers.
    pub handlers: usize,
}

/// The eight scenarios of Figure 4.
#[must_use]
pub fn figure4_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            id: 1,
            name: "tiny static page",
            ac_regions: 2,
            paragraphs_per_region: 1,
            words_per_paragraph: 20,
            scripts: 0,
            handlers: 0,
        },
        Scenario {
            id: 2,
            name: "small page, few regions",
            ac_regions: 5,
            paragraphs_per_region: 2,
            words_per_paragraph: 30,
            scripts: 1,
            handlers: 1,
        },
        Scenario {
            id: 3,
            name: "forum thread, short",
            ac_regions: 10,
            paragraphs_per_region: 2,
            words_per_paragraph: 40,
            scripts: 2,
            handlers: 2,
        },
        Scenario {
            id: 4,
            name: "forum thread, medium",
            ac_regions: 20,
            paragraphs_per_region: 3,
            words_per_paragraph: 40,
            scripts: 3,
            handlers: 4,
        },
        Scenario {
            id: 5,
            name: "calendar month view",
            ac_regions: 31,
            paragraphs_per_region: 2,
            words_per_paragraph: 25,
            scripts: 3,
            handlers: 6,
        },
        Scenario {
            id: 6,
            name: "long discussion",
            ac_regions: 40,
            paragraphs_per_region: 4,
            words_per_paragraph: 50,
            scripts: 4,
            handlers: 8,
        },
        Scenario {
            id: 7,
            name: "heavy dynamic content",
            ac_regions: 25,
            paragraphs_per_region: 3,
            words_per_paragraph: 40,
            scripts: 10,
            handlers: 10,
        },
        Scenario {
            id: 8,
            name: "large portal page",
            ac_regions: 60,
            paragraphs_per_region: 4,
            words_per_paragraph: 50,
            scripts: 6,
            handlers: 12,
        },
    ]
}

/// Deterministic filler text (no RNG in the hot path so every run parses identical
/// bytes).
fn lorem(words: usize, salt: usize) -> String {
    const WORDS: [&str; 12] = [
        "escudo",
        "ring",
        "browser",
        "policy",
        "origin",
        "cookie",
        "script",
        "mandatory",
        "access",
        "control",
        "page",
        "principal",
    ];
    let mut out = String::with_capacity(words * 8);
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[(i * 7 + salt) % WORDS.len()]);
    }
    out
}

/// Generates the ESCUDO-configured HTML page for a scenario.
///
/// The same page is loaded by both browser configurations: the ESCUDO browser extracts
/// and enforces the configuration, the baseline browser ignores it — exactly how the
/// paper compares "with" and "without" ESCUDO.
#[must_use]
pub fn generate_page(scenario: &Scenario) -> String {
    let mut markup = AcMarkup::new(0xF1_60_04 + scenario.id as u64, true);
    let mut body_inner = String::new();

    // The application's own chrome (ring 1): a status line plus navigation.
    body_inner.push_str(&markup.region(
        Ring::new(1),
        Acl::uniform(Ring::new(1)),
        "id=\"app\"",
        "<h1>Generated workload page</h1><div id=\"app-status\">loading</div>\
         <ul><li><a href=\"/index.php\">home</a></li><li><a href=\"/help.php\">help</a></li></ul>",
    ));

    // Application scripts (dynamic content, ring 1): each does a little DOM work.
    for script_index in 0..scenario.scripts {
        let code = format!(
            "var el{i} = document.getElementById('app-status');\
             if (el{i} != null) {{ el{i}.innerHTML = 'step {i}'; }}\
             var total{i} = 0;\
             for (var k = 0; k < 25; k++) {{ total{i} += k; }}",
            i = script_index
        );
        body_inner.push_str(&markup.region(
            Ring::new(1),
            Acl::uniform(Ring::new(1)),
            "class=\"app-script\"",
            &format!("<script>{code}</script>"),
        ));
    }

    // User-content regions (ring 3, writable only by rings 0–2), some carrying inline
    // event handlers.
    for region_index in 0..scenario.ac_regions {
        let mut region = String::new();
        for paragraph in 0..scenario.paragraphs_per_region {
            region.push_str(&format!(
                "<p>{}</p>",
                lorem(scenario.words_per_paragraph, region_index * 13 + paragraph)
            ));
        }
        if region_index < scenario.handlers {
            region.push_str(&format!(
                "<button id=\"action-{region_index}\" \
                 onclick=\"document.getElementById('action-{region_index}').innerHTML = 'clicked';\">\
                 vote</button>"
            ));
        }
        body_inner.push_str(&markup.region(
            Ring::new(3),
            Acl::new(Ring::new(2), Ring::new(2), Ring::new(2)),
            &format!("id=\"user-{region_index}\" class=\"user-content\""),
            &region,
        ));
    }

    let body = markup.region_with_tag(
        "body",
        Ring::new(1),
        Acl::uniform(Ring::new(1)),
        "",
        &body_inner,
    );
    format!(
        "<!DOCTYPE html><html><head><title>scenario {}</title></head>{body}</html>",
        scenario.id
    )
}

/// One mediation request of a decision workload.
pub type DecisionCheck = (PrincipalContext, ObjectContext, Operation);

/// Generates a deterministic decision workload: `principals` distinct principal
/// contexts crossed with `objects` distinct object contexts, cycling through the
/// three operations.
///
/// The contexts vary in ring, origin and ACL the way a multi-page forum session does
/// (a few origins, a handful of rings, many distinctly-labelled DOM regions), so the
/// engine's interner and decision cache see realistic key diversity: every pair is
/// distinct on first touch (the *cold* path) and identical on every later pass (the
/// *cached* path).
#[must_use]
pub fn decision_workload(principals: usize, objects: usize) -> Vec<DecisionCheck> {
    let origins = [
        Origin::new("http", "forum.example", 80),
        Origin::new("http", "calendar.example", 80),
        Origin::new("https", "blog.example", 443),
    ];
    let principal_kinds = [
        PrincipalKind::Script,
        PrincipalKind::EventHandler,
        PrincipalKind::RequestIssuer,
    ];
    let object_kinds = [
        ObjectKind::DomElement,
        ObjectKind::Cookie,
        ObjectKind::NativeApi,
    ];
    // Every principal gets a distinct (origin, ring) pair and every object a distinct
    // (origin, ring, acl) triple, so the engine interns exactly `principals` and
    // `objects` ids and a first pass over the checks is genuinely cold — no pair is a
    // disguised repeat of an earlier one.
    let principal_contexts: Vec<PrincipalContext> = (0..principals)
        .map(|i| {
            PrincipalContext::new(
                principal_kinds[i % principal_kinds.len()],
                origins[i % origins.len()].clone(),
                Ring::new(u16::try_from(i / origins.len()).expect("workload fits u16")),
            )
            .with_label(format!("workload principal #{i}"))
        })
        .collect();
    let object_contexts: Vec<ObjectContext> = (0..objects)
        .map(|j| {
            let ring = Ring::new(u16::try_from(j / origins.len()).expect("workload fits u16"));
            ObjectContext::new(
                object_kinds[j % object_kinds.len()],
                origins[j % origins.len()].clone(),
                ring,
            )
            .with_acl(Acl::uniform(ring))
            .with_label(format!("workload object #{j}"))
        })
        .collect();
    let mut checks = Vec::with_capacity(principals * objects);
    for (i, principal) in principal_contexts.iter().enumerate() {
        for (j, object) in object_contexts.iter().enumerate() {
            checks.push((
                principal.clone(),
                object.clone(),
                Operation::ALL[(i + j) % Operation::ALL.len()],
            ));
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_workload_has_requested_shape() {
        let checks = decision_workload(6, 7);
        assert_eq!(checks.len(), 42);
        // Deterministic: two generations are identical.
        assert_eq!(decision_workload(6, 7), checks);
        // Every principal/object interns to a distinct id — a first pass really is
        // cold (this is what the cold-path benchmark relies on).
        let mut table = escudo_core::ContextTable::new();
        let big = decision_workload(24, 24);
        for (p, o, _) in &big {
            table.intern_principal(p);
            table.intern_object(o);
        }
        assert_eq!(table.principal_count(), 24);
        assert_eq!(table.object_count(), 24);
        // It exercises same- and cross-origin pairs and all three operations.
        assert!(checks.iter().any(|(p, o, _)| p.origin == o.origin));
        assert!(checks.iter().any(|(p, o, _)| p.origin != o.origin));
        for op in Operation::ALL {
            assert!(checks.iter().any(|(_, _, o)| *o == op));
        }
    }

    #[test]
    fn there_are_eight_scenarios_of_increasing_size() {
        let scenarios = figure4_scenarios();
        assert_eq!(scenarios.len(), 8);
        let sizes: Vec<usize> = scenarios.iter().map(|s| generate_page(s).len()).collect();
        assert!(
            sizes[0] < sizes[7],
            "scenario 8 should be the largest: {sizes:?}"
        );
    }

    #[test]
    fn generated_pages_are_deterministic_and_well_formed() {
        let scenario = figure4_scenarios()[3];
        let a = generate_page(&scenario);
        let b = generate_page(&scenario);
        assert_eq!(a, b);
        assert_eq!(
            a.matches("class=\"user-content\"").count(),
            scenario.ac_regions
        );
        assert_eq!(a.matches("<script>").count(), scenario.scripts);
        assert_eq!(a.matches("onclick=").count(), scenario.handlers);
        // Every AC region closes with a nonce-carrying end tag.
        assert_eq!(
            a.matches("</div nonce=").count() + a.matches("</body nonce=").count(),
            a.matches(" nonce=\"").count() / 2
        );
    }

    #[test]
    fn pages_parse_and_load_under_both_modes() {
        use escudo_browser::{Browser, PolicyMode};
        use escudo_net::{Request, Response};
        let html = generate_page(&figure4_scenarios()[1]);
        for mode in [PolicyMode::Escudo, PolicyMode::SameOriginOnly] {
            let mut browser = Browser::new(mode);
            let page_html = html.clone();
            browser
                .network_mut()
                .register("http://workload.example", move |_req: &Request| {
                    Response::ok_html(page_html.clone())
                });
            let page = browser.navigate("http://workload.example/").unwrap();
            assert!(browser.page(page).all_scripts_succeeded());
            assert!(browser.page(page).render_stats.boxes > 10);
        }
    }
}
