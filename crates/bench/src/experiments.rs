//! Report types for every table and figure of the paper's evaluation.

use std::fmt;

use escudo_apps::evaluate::DefenseReport;
use escudo_apps::scenario::MatrixReport;
use escudo_apps::{CalendarApp, ForumApp, ForumConfig};
use escudo_browser::{Browser, PolicyMode};
use escudo_core::taxonomy;

use crate::measure::{measure_event_dispatch, measure_parse_render, SampleStats};
use crate::workload::{figure4_scenarios, generate_page};

// ------------------------------------------------------------------------ Figure 4

/// One scenario's row of Figure 4.
#[derive(Debug, Clone)]
pub struct Figure4Row {
    /// Scenario index (x axis).
    pub scenario: usize,
    /// Scenario name.
    pub name: String,
    /// Parse+render statistics without ESCUDO (SOP baseline).
    pub without_escudo: SampleStats,
    /// Parse+render statistics with ESCUDO.
    pub with_escudo: SampleStats,
    /// Relative overhead in percent.
    pub overhead_pct: f64,
}

/// The Figure 4 report: parse+render time per scenario, with and without ESCUDO.
#[derive(Debug, Clone)]
pub struct Figure4Report {
    /// Per-scenario rows.
    pub rows: Vec<Figure4Row>,
    /// Number of timed runs per scenario and mode.
    pub runs: usize,
    /// Mean of the per-scenario overheads, in percent (the paper reports 5.09%).
    pub average_overhead_pct: f64,
}

impl Figure4Report {
    /// Runs the experiment: `runs` timed loads of each of the 8 scenarios under each
    /// mode (the paper averages over 90 executions).
    #[must_use]
    pub fn run(runs: usize) -> Self {
        let mut rows = Vec::new();
        for scenario in figure4_scenarios() {
            let html = generate_page(&scenario);
            let without = measure_parse_render(PolicyMode::SameOriginOnly, &html, runs);
            let with = measure_parse_render(PolicyMode::Escudo, &html, runs);
            // Overhead is computed on medians: the absolute per-load times are well
            // under a millisecond on modern hardware, so the mean is easily skewed by
            // scheduler noise.
            let overhead_pct = if without.median_ns > 0 {
                (with.median_ns as f64 - without.median_ns as f64) / without.median_ns as f64
                    * 100.0
            } else {
                0.0
            };
            rows.push(Figure4Row {
                scenario: scenario.id,
                name: scenario.name.to_string(),
                without_escudo: without,
                with_escudo: with,
                overhead_pct,
            });
        }
        let average_overhead_pct =
            rows.iter().map(|r| r.overhead_pct).sum::<f64>() / rows.len() as f64;
        Figure4Report {
            rows,
            runs,
            average_overhead_pct,
        }
    }
}

impl fmt::Display for Figure4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 — parsing and rendering time ({} runs per scenario and mode)",
            self.runs
        )?;
        writeln!(
            f,
            "{:<4} {:<24} {:>16} {:>16} {:>10}",
            "#", "scenario", "without (ms)", "with ESCUDO (ms)", "overhead"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<4} {:<24} {:>16.3} {:>16.3} {:>9.2}%",
                row.scenario,
                row.name,
                row.without_escudo.median_ms(),
                row.with_escudo.median_ms(),
                row.overhead_pct
            )?;
        }
        writeln!(
            f,
            "average overhead: {:.2}%   (paper: 5.09% on the Lobo prototype)",
            self.average_overhead_pct
        )
    }
}

// ------------------------------------------------------------------------ UI events

/// The §6.5 UI-event measurement: per-dispatch time with and without ESCUDO.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// Per-dispatch statistics without ESCUDO.
    pub without_escudo: SampleStats,
    /// Per-dispatch statistics with ESCUDO.
    pub with_escudo: SampleStats,
    /// Relative overhead in percent.
    pub overhead_pct: f64,
}

impl EventReport {
    /// Runs the experiment (`runs` dispatches per mode).
    #[must_use]
    pub fn run(runs: usize) -> Self {
        let html = generate_page(&figure4_scenarios()[4]);
        let without = measure_event_dispatch(PolicyMode::SameOriginOnly, &html, "action-0", runs);
        let with = measure_event_dispatch(PolicyMode::Escudo, &html, "action-0", runs);
        let overhead_pct = if without.mean_ns > 0.0 {
            (with.mean_ns - without.mean_ns) / without.mean_ns * 100.0
        } else {
            0.0
        };
        EventReport {
            without_escudo: without,
            with_escudo: with,
            overhead_pct,
        }
    }
}

impl fmt::Display for EventReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "UI-event handling (§6.5), {} dispatches per mode",
            self.without_escudo.runs
        )?;
        writeln!(
            f,
            "  without ESCUDO: {:>10.1} µs/dispatch",
            self.without_escudo.mean_ns / 1_000.0
        )?;
        writeln!(
            f,
            "  with ESCUDO:    {:>10.1} µs/dispatch",
            self.with_escudo.mean_ns / 1_000.0
        )?;
        writeln!(
            f,
            "  overhead:       {:>9.2}%   (paper: \"no noticeable overhead\")",
            self.overhead_pct
        )
    }
}

// ------------------------------------------------------------------------ §6.3 compat

/// The §6.3 compatibility experiment.
#[derive(Debug, Clone)]
pub struct CompatReport {
    /// ESCUDO-configured application on a non-ESCUDO browser: did it work?
    pub escudo_app_on_legacy_browser_works: bool,
    /// Legacy application on the ESCUDO browser: did it work (and collapse to SOP)?
    pub legacy_app_on_escudo_browser_works: bool,
    /// Denials recorded in either direction (should be zero).
    pub denials: u64,
}

impl CompatReport {
    /// Runs both directions of the compatibility experiment against the forum.
    #[must_use]
    pub fn run() -> Self {
        let mut denials = 0;

        let mut legacy_browser = Browser::new(PolicyMode::SameOriginOnly);
        legacy_browser.network_mut().register(
            "http://forum.example",
            ForumApp::new(ForumConfig::default()),
        );
        legacy_browser
            .navigate("http://forum.example/login.php?user=alice")
            .expect("login");
        let page = legacy_browser
            .navigate("http://forum.example/index.php")
            .expect("index");
        let escudo_app_on_legacy_browser_works = legacy_browser.page(page).all_scripts_succeeded()
            && legacy_browser.page(page).text_of("app-status").as_deref() == Some("ready");
        denials += legacy_browser.erm().denials();

        let mut escudo_browser = Browser::new(PolicyMode::Escudo);
        escudo_browser
            .network_mut()
            .register("http://forum.example", ForumApp::new(ForumConfig::legacy()));
        escudo_browser
            .navigate("http://forum.example/login.php?user=alice")
            .expect("login");
        let page = escudo_browser
            .navigate("http://forum.example/index.php")
            .expect("index");
        let legacy_app_on_escudo_browser_works = escudo_browser.page(page).legacy
            && escudo_browser.page(page).all_scripts_succeeded()
            && escudo_browser.page(page).text_of("app-status").as_deref() == Some("ready");
        denials += escudo_browser.erm().denials();

        CompatReport {
            escudo_app_on_legacy_browser_works,
            legacy_app_on_escudo_browser_works,
            denials,
        }
    }
}

impl fmt::Display for CompatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Compatibility (§6.3)")?;
        writeln!(
            f,
            "  ESCUDO application on a non-ESCUDO browser: {}",
            if self.escudo_app_on_legacy_browser_works {
                "works (configuration ignored)"
            } else {
                "BROKEN"
            }
        )?;
        writeln!(
            f,
            "  legacy application on the ESCUDO browser:   {}",
            if self.legacy_app_on_escudo_browser_works {
                "works (collapses to the SOP)"
            } else {
                "BROKEN"
            }
        )?;
        writeln!(
            f,
            "  reference-monitor denials in either direction: {}",
            self.denials
        )
    }
}

// ------------------------------------------------------------------------ tables

/// Formats Table 1 (the principal/object taxonomy) from the model.
#[must_use]
pub fn format_table1() -> String {
    let mut out = String::from("Table 1 — principals and objects inside the web browser\n");
    for entry in taxonomy::table1() {
        out.push_str(&format!(
            "  {:<36} {:<34} {:?}{}\n",
            entry.category,
            entry.entity,
            entry.role,
            if entry.controllable_by_application {
                ""
            } else {
                "  (outside application control)"
            }
        ));
    }
    out
}

/// Formats Tables 2–5 (requirements and configurations of the two case studies).
#[must_use]
pub fn format_case_study_tables() -> String {
    let mut out = String::new();
    out.push_str("Table 2 — phpBB security requirements\n");
    for row in ForumApp::security_requirements() {
        out.push_str(&format!(
            "  {:<24} modify DOM: {:<5} cookies: {:<5} XMLHttpRequest: {}\n",
            row.principal,
            yes_no(row.modify_dom),
            yes_no(row.access_cookies),
            yes_no(row.access_xhr)
        ));
    }
    out.push_str("Table 3 — phpBB ESCUDO configuration\n");
    for row in ForumApp::escudo_config() {
        out.push_str(&format!(
            "  {:<24} ring {}   read ≤ {}   write ≤ {}\n",
            row.resource, row.ring, row.read, row.write
        ));
    }
    out.push_str("Table 4 — PHP-Calendar security requirements\n");
    for row in CalendarApp::security_requirements() {
        out.push_str(&format!(
            "  {:<24} modify DOM: {:<5} cookies: {:<5} XMLHttpRequest: {}\n",
            row.principal,
            yes_no(row.modify_dom),
            yes_no(row.access_cookies),
            yes_no(row.access_xhr)
        ));
    }
    out.push_str("Table 5 — PHP-Calendar ESCUDO configuration\n");
    for row in CalendarApp::escudo_config() {
        out.push_str(&format!(
            "  {:<24} ring {}   read ≤ {}   write ≤ {}\n",
            row.resource, row.ring, row.read, row.write
        ));
    }
    out
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Formats the §6.4 defense-effectiveness report.
#[must_use]
pub fn format_defense_report(report: &DefenseReport) -> String {
    let mut out = String::from("Defense effectiveness (§6.4)\n");
    out.push_str(&format!(
        "  attacks staged: {} (4 XSS + 5 CSRF per application)\n",
        report.results.len() / 2
    ));
    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        out.push_str(&format!(
            "  {:<12} {:>2} succeed / {:>2} neutralized\n",
            mode.to_string(),
            report.successes(mode),
            report.neutralized(mode)
        ));
    }
    out.push_str("  per attack:\n");
    for result in &report.results {
        if result.mode == PolicyMode::Escudo {
            out.push_str(&format!("    {result}\n"));
        }
    }
    out
}

/// Formats the full (app × attack × mode) scenario matrix.
#[must_use]
pub fn format_matrix_report(report: &MatrixReport) -> String {
    let mut out = String::from("Scenario matrix (app × attack × policy mode)\n");
    out.push_str(&format!(
        "  cells: {}   unexpected: {}\n",
        report.cells(),
        report.unexpected().len()
    ));
    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        out.push_str(&format!(
            "  {:<12} {:>2} succeed / {:>2} neutralized   {:>5} checks, {:>3} denials\n",
            mode.to_string(),
            report.successes(mode),
            report.neutralized(mode),
            report.total_checks(mode),
            report.total_denials(mode)
        ));
    }
    out.push_str("  per cell (ESCUDO):\n");
    for outcome in report.for_mode(PolicyMode::Escudo) {
        out.push_str(&format!("    {outcome}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_matches_the_paper() {
        // A small number of runs keeps the unit test fast; the experiments binary and
        // EXPERIMENTS.md use 90 runs like the paper.
        let report = Figure4Report::run(5);
        assert_eq!(report.rows.len(), 8);
        for row in &report.rows {
            assert!(row.with_escudo.mean_ns > 0.0);
            assert!(row.without_escudo.mean_ns > 0.0);
            // ESCUDO adds bookkeeping, so it should not be dramatically *faster*; allow
            // generous noise but catch sign errors in the computation.
            assert!(row.overhead_pct > -40.0, "suspicious overhead: {row:?}");
        }
    }

    #[test]
    fn event_and_compat_reports_run() {
        let events = EventReport::run(20);
        assert_eq!(events.with_escudo.runs, 20);
        let compat = CompatReport::run();
        assert!(compat.escudo_app_on_legacy_browser_works);
        assert!(compat.legacy_app_on_escudo_browser_works);
        assert_eq!(compat.denials, 0);
    }

    #[test]
    fn matrix_report_formats_every_escudo_cell() {
        let report = MatrixReport::run_registry();
        let formatted = format_matrix_report(&report);
        assert!(formatted.contains("unexpected: 0"));
        assert!(formatted.contains("forum-xss-1"));
        assert!(formatted.contains("vault-leak-token"));
        assert!(formatted.contains("adnet-banners"));
    }

    #[test]
    fn tables_render_all_rows() {
        let t1 = format_table1();
        assert!(t1.contains("HTML img"));
        assert!(t1.contains("Cookies"));
        let tables = format_case_study_tables();
        assert!(tables.contains("Table 3"));
        assert!(tables.contains("Calendar events"));
        assert!(tables.contains("ring 3"));
    }
}
