//! The concurrent multi-session workload: N OS threads against one shared engine.
//!
//! The ROADMAP's north star is a deployment serving many users at once, which means
//! one [`EscudoEngine`] (one interning table, one warm decision cache) backing many
//! *independent* browsing sessions concurrently. This module provides the two drivers
//! the `policy_concurrent` bench and the CI gate are built on:
//!
//! * [`run_concurrent_sessions`] — the end-to-end workload: every thread owns a full
//!   browser stack (network, DOM, script interpreter) and drives a real
//!   forum/blog/calendar session — login, page loads, policy-mediated cookie
//!   attachment, script execution — while *sharing* the policy engine with every
//!   other thread,
//! * [`measure_concurrent_throughput`] — the decision-path microbenchmark: T threads
//!   hammer the shared warm engine with the standard decision workload and the
//!   aggregate decisions/second over the timed window is reported.
//!
//! Both return engine statistics taken through the same concurrent `stats()` path the
//! production monitor would use, so the reported hit rates are the self-consistent
//! snapshots the sharded engine guarantees.
//!
//! The **shared cookie jar** ([`SharedCookieJar`]) gets the same treatment for the
//! `jar_concurrent` bench and its CI gate:
//!
//! * [`run_shared_jar_sessions`] — N full browser sessions (disjoint hosts, one
//!   forum instance each) concurrently storing into and attaching from one shared
//!   jar, with cross-session isolation counted afterwards,
//! * [`run_jar_oracle_sessions`] — a deterministic store/header script per session,
//!   every concurrent result compared byte-for-byte against a single-threaded
//!   [`CookieJar`] replay,
//! * [`measure_jar_throughput`] — T threads building `Cookie` headers against one
//!   pre-populated shared jar; aggregate headers/second over the timed window.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use escudo_apps::{BlogApp, CalendarApp, CalendarConfig, ForumApp, ForumConfig};
use escudo_browser::Browser;
use escudo_core::{EngineStats, EscudoEngine, PolicyEngine};
use escudo_net::{CookieJar, JarStats, SetCookie, SharedCookieJar, Url};

use crate::workload::DecisionCheck;

/// What one session thread did to the shared engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionTally {
    /// Pages successfully loaded (parse + label extraction + scripts + render).
    pub page_loads: u64,
    /// Reference-monitor checks the thread's browser performed.
    pub checks: u64,
    /// Denials among those checks.
    pub denials: u64,
}

/// The aggregate outcome of a concurrent multi-session run.
#[derive(Debug, Clone)]
pub struct SessionWorkloadReport {
    /// Number of OS threads (= concurrent sessions).
    pub threads: usize,
    /// Rounds of page loads each session performed after login.
    pub rounds: usize,
    /// Per-thread tallies, in thread order.
    pub tallies: Vec<SessionTally>,
    /// Engine statistics after all sessions finished.
    pub stats: EngineStats,
    /// Wall-clock nanoseconds for the whole run (spawn to join).
    pub elapsed_ns: u128,
}

impl SessionWorkloadReport {
    /// Total pages loaded across all sessions.
    #[must_use]
    pub fn page_loads(&self) -> u64 {
        self.tallies.iter().map(|t| t.page_loads).sum()
    }

    /// Total reference-monitor checks across all sessions.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.tallies.iter().map(|t| t.checks).sum()
    }

    /// Total denials across all sessions.
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.tallies.iter().map(|t| t.denials).sum()
    }
}

/// Drives one forum session: login, then `rounds` × (topic view + index).
fn drive_forum(engine: Arc<EscudoEngine>, user: &str, rounds: usize) -> SessionTally {
    let forum = ForumApp::new(ForumConfig::default());
    let state = forum.state();
    let mut browser = Browser::with_engine(engine);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    let mut tally = SessionTally::default();
    browser
        .navigate(&format!("http://forum.example/login.php?user={user}"))
        .expect("forum login");
    tally.page_loads += 1;
    {
        let mut forum_state = state.lock().expect("app state lock");
        forum_state.topics.push(escudo_apps::forum::Topic {
            id: 1,
            title: format!("{user}'s topic"),
            author: user.to_string(),
            body: "concurrent workload seed post".to_string(),
        });
    }
    for _ in 0..rounds {
        browser
            .navigate("http://forum.example/viewtopic.php?t=1")
            .expect("topic view");
        browser
            .navigate("http://forum.example/index.php")
            .expect("forum index");
        tally.page_loads += 2;
    }
    tally.checks = browser.erm().checks();
    tally.denials = browser.erm().denials();
    tally
}

/// Drives one blog session: `rounds + 1` front-page loads (comments, ad slot,
/// inline scripts — the Figure 3 page).
fn drive_blog(engine: Arc<EscudoEngine>, rounds: usize) -> SessionTally {
    let mut browser = Browser::with_engine(engine);
    browser
        .network_mut()
        .register("http://blog.example", BlogApp::new());
    let mut tally = SessionTally::default();
    for _ in 0..=rounds {
        browser
            .navigate("http://blog.example/")
            .expect("blog front page");
        tally.page_loads += 1;
    }
    tally.checks = browser.erm().checks();
    tally.denials = browser.erm().denials();
    tally
}

/// Drives one calendar session: login, then `rounds` month views.
fn drive_calendar(engine: Arc<EscudoEngine>, user: &str, rounds: usize) -> SessionTally {
    let calendar = CalendarApp::new(CalendarConfig::default());
    let state = calendar.state();
    let mut browser = Browser::with_engine(engine);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);
    let mut tally = SessionTally::default();
    browser
        .navigate(&format!("http://calendar.example/login.php?user={user}"))
        .expect("calendar login");
    tally.page_loads += 1;
    {
        let mut calendar_state = state.lock().expect("app state lock");
        calendar_state.events.push(escudo_apps::calendar::Event {
            id: 1,
            day: 12,
            title: format!("{user}'s standup"),
            description: "concurrent workload seed event".to_string(),
            author: user.to_string(),
        });
    }
    for _ in 0..rounds {
        browser
            .navigate("http://calendar.example/index.php")
            .expect("calendar month view");
        tally.page_loads += 1;
    }
    tally.checks = browser.erm().checks();
    tally.denials = browser.erm().denials();
    tally
}

/// Runs `threads` independent application sessions concurrently against one shared
/// engine, `rounds` page-load rounds each.
///
/// Thread `t` drives the forum, the blog or the calendar (rotating by `t % 3`) with
/// its own user name, its own in-memory server and its own browser — only the policy
/// engine (and therefore the interning table and decision cache) is shared, exactly
/// as in a multi-tenant enforcement deployment.
///
/// # Panics
///
/// Panics if any session thread fails a page load — the workload is deterministic, so
/// a failure is a real regression, not noise.
#[must_use]
pub fn run_concurrent_sessions(
    engine: &Arc<EscudoEngine>,
    threads: usize,
    rounds: usize,
) -> SessionWorkloadReport {
    let start = Instant::now();
    let tallies: Vec<SessionTally> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = Arc::clone(engine);
                scope.spawn(move || {
                    let user = format!("user{t}");
                    match t % 3 {
                        0 => drive_forum(engine, &user, rounds),
                        1 => drive_blog(engine, rounds),
                        _ => drive_calendar(engine, &user, rounds),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("session thread panicked"))
            .collect()
    });
    SessionWorkloadReport {
        threads,
        rounds,
        tallies,
        stats: engine.stats(),
        elapsed_ns: start.elapsed().as_nanos(),
    }
}

/// One measurement of aggregate decision throughput at a given thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputSample {
    /// Number of threads hammering the shared engine.
    pub threads: usize,
    /// Decisions completed inside the timed window (across all threads).
    pub decisions: u64,
    /// Wall-clock nanoseconds for the timed window.
    pub elapsed_ns: u128,
    /// Cache hit rate over the timed window only (steady state: the engine is warmed
    /// before the window opens).
    pub hit_rate: f64,
}

impl ThroughputSample {
    /// Aggregate decisions per second across all threads.
    #[must_use]
    pub fn decisions_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.decisions as f64 * 1.0e9 / self.elapsed_ns as f64
        }
    }

    /// Mean nanoseconds per decision (aggregate wall time / decisions).
    #[must_use]
    pub fn ns_per_decision(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.elapsed_ns as f64 / self.decisions as f64
        }
    }
}

/// Measures steady-state aggregate decision throughput: a fresh engine is warmed with
/// one full pass over `workload`, then `threads` OS threads each re-run the workload
/// `passes_per_thread` times concurrently. The hit rate covers only the timed window,
/// so it reports the steady state the gate cares about, not the warm-up misses.
///
/// The timed window runs from the *earliest* per-thread start timestamp (taken by
/// each thread right after it clears the start barrier) to the *latest* per-thread
/// finish timestamp — thread spawn and join overhead are excluded, every decision
/// counted falls inside the window, and no thread's head start can inflate the
/// reported throughput.
#[must_use]
pub fn measure_concurrent_throughput(
    workload: &[DecisionCheck],
    threads: usize,
    passes_per_thread: usize,
) -> ThroughputSample {
    let engine = EscudoEngine::new();
    for (principal, object, op) in workload {
        std::hint::black_box(engine.decide(principal, object, *op));
    }
    let warm = engine.stats();

    let barrier = std::sync::Barrier::new(threads);
    let elapsed_ns = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let start = Instant::now();
                    for _ in 0..passes_per_thread {
                        for (principal, object, op) in workload {
                            std::hint::black_box(engine.decide(principal, object, *op));
                        }
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        let mut first_start: Option<Instant> = None;
        let mut last_finish: Option<Instant> = None;
        for handle in handles {
            let (start, finish) = handle.join().expect("throughput thread panicked");
            if first_start.is_none_or(|earliest| start < earliest) {
                first_start = Some(start);
            }
            if last_finish.is_none_or(|latest| finish > latest) {
                last_finish = Some(finish);
            }
        }
        last_finish
            .expect("at least one thread")
            .duration_since(first_start.expect("at least one thread"))
    })
    .as_nanos();

    let stats = engine.stats();
    let decisions = stats.decisions - warm.decisions;
    let hits = stats.cache_hits - warm.cache_hits;
    ThroughputSample {
        threads,
        decisions,
        elapsed_ns,
        hit_rate: if decisions == 0 {
            0.0
        } else {
            hits as f64 / decisions as f64
        },
    }
}

/// Best-of-`samples` throughput measurement (scheduler noise only ever slows a run
/// down, so the best sample is the least-noisy estimate of the engine's capacity).
#[must_use]
pub fn best_throughput(
    workload: &[DecisionCheck],
    threads: usize,
    passes_per_thread: usize,
    samples: usize,
) -> ThroughputSample {
    (0..samples.max(1))
        .map(|_| measure_concurrent_throughput(workload, threads, passes_per_thread))
        .max_by(|a, b| a.decisions_per_sec().total_cmp(&b.decisions_per_sec()))
        .expect("at least one sample")
}

// --------------------------------------------------------------- shared cookie jar

/// The outcome of the shared-jar multi-session workload.
#[derive(Debug, Clone)]
pub struct JarWorkloadReport {
    /// Number of OS threads (= concurrent sessions, each against its own host).
    pub threads: usize,
    /// Rounds of page loads each session performed after login.
    pub rounds: usize,
    /// Per-thread tallies, in thread order.
    pub tallies: Vec<SessionTally>,
    /// Shared-jar statistics after all sessions finished.
    pub jar_stats: JarStats,
    /// Sessions whose own session cookie was present in the shared jar at the end.
    pub sessions_with_cookies: usize,
    /// Cookies that leaked across session hosts: candidates for session `t`'s host
    /// whose stored host is a *different* session's host. Must be 0.
    pub isolation_violations: usize,
    /// Wall-clock nanoseconds for the whole run (spawn to join).
    pub elapsed_ns: u128,
}

/// The host session `t` of the shared-jar workload drives.
#[must_use]
pub fn jar_session_host(t: usize) -> String {
    format!("forum{t}.example")
}

/// Runs `threads` full browser sessions concurrently, all storing into **one**
/// shared cookie jar (and deciding through one shared engine). Session `t` drives
/// its own forum instance at [`jar_session_host`]`(t)` — login plus `rounds` ×
/// (topic view + index) — so the jar sees concurrent stores and policy-mediated
/// attachments from every thread while each session's cookies stay scoped to its
/// own host.
///
/// # Panics
///
/// Panics if any session thread fails a page load — the workload is deterministic,
/// so a failure is a real regression, not noise.
#[must_use]
pub fn run_shared_jar_sessions(
    engine: &Arc<EscudoEngine>,
    jar: &Arc<SharedCookieJar>,
    threads: usize,
    rounds: usize,
) -> JarWorkloadReport {
    let start = Instant::now();
    let tallies: Vec<SessionTally> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = Arc::clone(engine);
                let jar = Arc::clone(jar);
                scope.spawn(move || {
                    let host = jar_session_host(t);
                    let forum = ForumApp::new(ForumConfig::default());
                    let state = forum.state();
                    let mut browser = Browser::with_jar(engine, jar);
                    browser
                        .network_mut()
                        .register(&format!("http://{host}"), forum);
                    let mut tally = SessionTally::default();
                    browser
                        .navigate(&format!("http://{host}/login.php?user=user{t}"))
                        .expect("forum login");
                    tally.page_loads += 1;
                    {
                        let mut forum_state = state.lock().expect("app state lock");
                        forum_state.topics.push(escudo_apps::forum::Topic {
                            id: 1,
                            title: format!("user{t}'s topic"),
                            author: format!("user{t}"),
                            body: "shared-jar workload seed post".to_string(),
                        });
                    }
                    for _ in 0..rounds {
                        browser
                            .navigate(&format!("http://{host}/viewtopic.php?t=1"))
                            .expect("topic view");
                        browser
                            .navigate(&format!("http://{host}/index.php"))
                            .expect("forum index");
                        tally.page_loads += 2;
                    }
                    tally.checks = browser.erm().checks();
                    tally.denials = browser.erm().denials();
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("jar session thread panicked"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos();

    // Cross-session isolation: every candidate for session t's host must have been
    // stored under exactly that host (forum cookies are host-only).
    let mut sessions_with_cookies = 0;
    let mut isolation_violations = 0;
    for t in 0..threads {
        let host = jar_session_host(t);
        let url = Url::parse(&format!("http://{host}/index.php")).expect("session url");
        let candidates = jar.candidates_for(&url);
        if candidates
            .iter()
            .any(|c| c.name == escudo_apps::forum::SID_COOKIE)
        {
            sessions_with_cookies += 1;
        }
        isolation_violations += candidates
            .iter()
            .filter(|c| !c.host.eq_ignore_ascii_case(&host))
            .count();
    }

    JarWorkloadReport {
        threads,
        rounds,
        tallies,
        jar_stats: jar.stats(),
        sessions_with_cookies,
        isolation_violations,
        elapsed_ns,
    }
}

/// One deterministic jar operation of the oracle script.
#[derive(Debug, Clone)]
enum JarOp {
    /// Store `directive` as if delivered by a response from `url`.
    Store(Url, SetCookie),
    /// Build the permissive-filter `Cookie` header for a request to `url`.
    Header(Url),
}

/// The deterministic per-session operation script the oracle replay is checked
/// against: stores under several path scopes (default-path, explicit, replacement)
/// interleaved with header builds that exercise §5.4 ordering and path scoping.
fn jar_oracle_script(host: &str, rounds: usize) -> Vec<JarOp> {
    let url = |suffix: &str| Url::parse(&format!("http://{host}{suffix}")).expect("script url");
    let mut ops = Vec::new();
    for round in 0..rounds {
        // Default-path store: set from /forum/login.php → scope /forum.
        ops.push(JarOp::Store(
            url("/forum/login.php"),
            SetCookie::new("sid", format!("s{round}")),
        ));
        // Host-wide store plus a deeper explicit scope.
        ops.push(JarOp::Store(
            url("/forum/login.php"),
            SetCookie::new("data", format!("d{round}")).with_path("/"),
        ));
        ops.push(JarOp::Store(
            url("/forum/admin/tool.php"),
            SetCookie::new("admin", format!("a{round}")),
        ));
        ops.push(JarOp::Header(url("/forum/viewtopic.php?t=1")));
        ops.push(JarOp::Header(url("/forum/admin/index.php")));
        // Out of the default-path scope: only the host-wide cookie may attach.
        ops.push(JarOp::Header(url("/blog/index.php")));
        ops.push(JarOp::Header(url("/")));
    }
    ops
}

/// The outcome of the shared-jar oracle run.
#[derive(Debug, Clone, Copy, Default)]
pub struct JarOracleReport {
    /// Number of OS threads (= concurrent sessions, disjoint hosts).
    pub threads: usize,
    /// `Cookie` headers built across all threads.
    pub headers: u64,
    /// Headers that differed from the single-threaded [`CookieJar`] oracle replay.
    pub mismatches: u64,
}

/// Runs the deterministic jar script on `threads` concurrent sessions over **one**
/// shared jar (disjoint hosts, so each session's answers are deterministic), then
/// replays every session's script on a fresh single-threaded [`CookieJar`] and
/// counts headers that are not byte-identical.
///
/// # Panics
///
/// Panics if a session thread panics.
#[must_use]
pub fn run_jar_oracle_sessions(threads: usize, rounds: usize) -> JarOracleReport {
    let jar = SharedCookieJar::new();
    let observed: Vec<Vec<Option<String>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let jar = &jar;
                scope.spawn(move || {
                    let script = jar_oracle_script(&format!("oracle{t}.example"), rounds);
                    let mut headers = Vec::new();
                    for op in &script {
                        match op {
                            JarOp::Store(url, directive) => jar.store(url, directive),
                            JarOp::Header(url) => {
                                headers.push(jar.cookie_header_for(url, |_| true));
                            }
                        }
                    }
                    headers
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("oracle session thread panicked"))
            .collect()
    });

    let mut report = JarOracleReport {
        threads,
        ..JarOracleReport::default()
    };
    for (t, observed_headers) in observed.iter().enumerate() {
        let mut oracle = CookieJar::new();
        let mut expected = Vec::new();
        for op in jar_oracle_script(&format!("oracle{t}.example"), rounds) {
            match op {
                JarOp::Store(url, directive) => oracle.store(&url, &directive),
                JarOp::Header(url) => expected.push(oracle.cookie_header_for(&url, |_| true)),
            }
        }
        report.headers += observed_headers.len() as u64;
        report.mismatches += observed_headers
            .iter()
            .zip(&expected)
            .filter(|(observed, expected)| observed != expected)
            .count() as u64;
    }
    report
}

/// One measurement of aggregate `Cookie`-header build throughput at a given thread
/// count.
#[derive(Debug, Clone, Copy, Default)]
pub struct JarThroughputSample {
    /// Number of threads hammering the shared jar.
    pub threads: usize,
    /// Headers built inside the timed window (across all threads).
    pub headers: u64,
    /// Wall-clock nanoseconds for the timed window.
    pub elapsed_ns: u128,
}

impl JarThroughputSample {
    /// Aggregate headers per second across all threads.
    #[must_use]
    pub fn headers_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.headers as f64 * 1.0e9 / self.elapsed_ns as f64
        }
    }

    /// Mean nanoseconds per header build.
    #[must_use]
    pub fn ns_per_header(&self) -> f64 {
        if self.headers == 0 {
            0.0
        } else {
            self.elapsed_ns as f64 / self.headers as f64
        }
    }
}

/// Measures steady-state header-build throughput: a jar is pre-populated with
/// `hosts` × `cookies_per_host` cookies under mixed path scopes, then `threads` OS
/// threads each build the `Cookie` header for every host's request URLs
/// `passes_per_thread` times. The timed window runs from the earliest per-thread
/// start to the latest per-thread finish, exactly like
/// [`measure_concurrent_throughput`].
#[must_use]
pub fn measure_jar_throughput(
    hosts: usize,
    cookies_per_host: usize,
    threads: usize,
    passes_per_thread: usize,
) -> JarThroughputSample {
    let jar = SharedCookieJar::new();
    let mut request_urls = Vec::with_capacity(hosts * 2);
    for h in 0..hosts {
        let host = format!("bench{h}.example");
        for c in 0..cookies_per_host {
            let setting =
                Url::parse(&format!("http://{host}/app{}/login.php", c % 3)).expect("setting url");
            jar.store(
                &setting,
                &SetCookie::new(format!("cookie{c}"), format!("v{c}")),
            );
        }
        request_urls
            .push(Url::parse(&format!("http://{host}/app0/index.php")).expect("request url"));
        request_urls.push(Url::parse(&format!("http://{host}/")).expect("request url"));
    }

    let barrier = std::sync::Barrier::new(threads);
    let elapsed_ns = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let jar = &jar;
                let request_urls = &request_urls;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    for _ in 0..passes_per_thread {
                        for url in request_urls {
                            std::hint::black_box(jar.cookie_header_for(url, |_| true));
                        }
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        let mut first_start: Option<Instant> = None;
        let mut last_finish: Option<Instant> = None;
        for handle in handles {
            let (start, finish) = handle.join().expect("jar throughput thread panicked");
            if first_start.is_none_or(|earliest| start < earliest) {
                first_start = Some(start);
            }
            if last_finish.is_none_or(|latest| finish > latest) {
                last_finish = Some(finish);
            }
        }
        last_finish
            .expect("at least one thread")
            .duration_since(first_start.expect("at least one thread"))
    })
    .as_nanos();

    JarThroughputSample {
        threads,
        headers: (request_urls.len() * passes_per_thread * threads) as u64,
        elapsed_ns,
    }
}

/// Best-of-`samples` jar throughput (scheduler noise only ever slows a run down, so
/// the best sample is the least-noisy estimate of the jar's capacity).
#[must_use]
pub fn best_jar_throughput(
    hosts: usize,
    cookies_per_host: usize,
    threads: usize,
    passes_per_thread: usize,
    samples: usize,
) -> JarThroughputSample {
    (0..samples.max(1))
        .map(|_| measure_jar_throughput(hosts, cookies_per_host, threads, passes_per_thread))
        .max_by(|a, b| a.headers_per_sec().total_cmp(&b.headers_per_sec()))
        .expect("at least one sample")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::decision_workload;

    #[test]
    fn concurrent_sessions_share_one_engine_and_all_load() {
        let engine = Arc::new(EscudoEngine::new());
        let report = run_concurrent_sessions(&engine, 3, 2);
        assert_eq!(report.threads, 3);
        assert_eq!(report.tallies.len(), 3);
        // Every session (forum, blog, calendar) loaded its pages.
        for tally in &report.tallies {
            assert!(tally.page_loads >= 3, "tally: {tally:?}");
            assert!(tally.checks > 0, "tally: {tally:?}");
        }
        // The shared engine saw every session's checks and its stats are consistent.
        assert!(report.stats.decisions > 0);
        assert_eq!(
            report.stats.decisions,
            report.stats.cache_hits + report.stats.cache_misses
        );
        // Repeated page loads within and across sessions hit the shared cache.
        assert!(report.stats.cache_hits > 0, "stats: {:?}", report.stats);
    }

    #[test]
    fn throughput_window_is_steady_state() {
        let workload = decision_workload(8, 8);
        let sample = measure_concurrent_throughput(&workload, 2, 3);
        assert_eq!(sample.threads, 2);
        assert_eq!(sample.decisions, (workload.len() * 2 * 3) as u64);
        assert!(sample.elapsed_ns > 0);
        // The engine was warmed before the window: the window is all cache hits.
        assert!(
            sample.hit_rate > 0.99,
            "steady-state hit rate: {}",
            sample.hit_rate
        );
        assert!(sample.decisions_per_sec() > 0.0);
        assert!(sample.ns_per_decision() > 0.0);
    }

    #[test]
    fn best_throughput_takes_the_fastest_sample() {
        let workload = decision_workload(4, 4);
        let best = best_throughput(&workload, 1, 2, 3);
        assert_eq!(best.decisions, (workload.len() * 2) as u64);
    }

    #[test]
    fn shared_jar_sessions_stay_isolated_per_host() {
        let engine = Arc::new(EscudoEngine::new());
        let jar = Arc::new(SharedCookieJar::new());
        let report = run_shared_jar_sessions(&engine, &jar, 3, 2);
        assert_eq!(report.threads, 3);
        assert_eq!(report.tallies.len(), 3);
        for tally in &report.tallies {
            assert!(tally.page_loads >= 5, "tally: {tally:?}");
            assert!(tally.checks > 0, "tally: {tally:?}");
        }
        // Every session's login cookie reached the shared jar; none leaked across
        // session hosts.
        assert_eq!(report.sessions_with_cookies, 3);
        assert_eq!(report.isolation_violations, 0);
        assert!(
            report.jar_stats.stored >= 3,
            "stats: {:?}",
            report.jar_stats
        );
        assert_eq!(report.jar_stats.evicted, 0);
    }

    #[test]
    fn jar_oracle_run_is_byte_identical_single_threaded_and_concurrent() {
        // Single session: trivially deterministic, must match the oracle.
        let report = run_jar_oracle_sessions(1, 2);
        assert_eq!(report.headers, 8);
        assert_eq!(report.mismatches, 0);
        // Concurrent sessions over disjoint hosts share the jar's shards but not
        // any host entry — still byte-identical to the per-session replay.
        let report = run_jar_oracle_sessions(4, 2);
        assert_eq!(report.headers, 32);
        assert_eq!(report.mismatches, 0);
    }

    #[test]
    fn jar_throughput_counts_every_header_in_the_window() {
        let sample = measure_jar_throughput(4, 3, 2, 5);
        assert_eq!(sample.threads, 2);
        assert_eq!(sample.headers, (4 * 2) as u64 * 5 * 2);
        assert!(sample.elapsed_ns > 0);
        assert!(sample.headers_per_sec() > 0.0);
        assert!(sample.ns_per_header() > 0.0);
        let best = best_jar_throughput(2, 2, 1, 2, 3);
        assert_eq!(best.headers, (2 * 2) as u64 * 2);
    }
}
