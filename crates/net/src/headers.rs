//! A case-insensitive HTTP header multimap.

use std::fmt;

/// An ordered, case-insensitive collection of HTTP headers. Multiple values per name
/// are supported (needed for `Set-Cookie` and the ESCUDO policy headers, which may
/// repeat).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header collection.
    #[must_use]
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header, preserving any existing values with the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replaces all values of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.entries.push((name.to_string(), value.into()));
    }

    /// Removes every value of `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// The first value of `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`, in insertion order.
    #[must_use]
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// `true` when at least one value of `name` is present.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over every `(name, value)` pair in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no headers are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The comma-separated directives of every `Cache-Control` header line,
    /// trimmed and lower-cased.
    fn cache_directives(&self) -> impl Iterator<Item = String> + '_ {
        self.get_all("Cache-Control")
            .into_iter()
            .flat_map(|value| value.split(','))
            .map(|directive| directive.trim().to_ascii_lowercase())
    }

    /// The `max-age=N` freshness lifetime in seconds from `Cache-Control`, if any.
    /// Malformed values are ignored (the response is then simply not cacheable).
    #[must_use]
    pub fn cache_max_age(&self) -> Option<u64> {
        self.cache_directives().find_map(|directive| {
            let seconds = directive.strip_prefix("max-age=")?;
            seconds.trim().parse().ok()
        })
    }

    /// `true` when `Cache-Control` carries a `no-store` directive — the response
    /// must never enter any cache.
    #[must_use]
    pub fn cache_no_store(&self) -> bool {
        self.cache_directives()
            .any(|directive| directive == "no-store")
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.entries {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

impl<N: Into<String>, V: Into<String>> FromIterator<(N, V)> for Headers {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut headers = Headers::new();
        for (n, v) in iter {
            headers.append(n, v);
        }
        headers
    }
}

impl<N: Into<String>, V: Into<String>> Extend<(N, V)> for Headers {
    fn extend<T: IntoIterator<Item = (N, V)>>(&mut self, iter: T) {
        for (n, v) in iter {
            self.append(n, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("Content-Length"));
    }

    #[test]
    fn multiple_values_are_preserved_in_order() {
        let mut h = Headers::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        h.append("X-Other", "z");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        assert_eq!(h.get("Set-Cookie"), Some("a=1"));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn set_replaces_all_values() {
        let mut h = Headers::new();
        h.append("X-A", "1");
        h.append("X-A", "2");
        h.set("x-a", "3");
        assert_eq!(h.get_all("X-A"), vec!["3"]);
    }

    #[test]
    fn remove_reports_count() {
        let mut h: Headers = [("A", "1"), ("a", "2"), ("B", "3")].into_iter().collect();
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.remove("A"), 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn display_is_http_like() {
        let h: Headers = [("Host", "example.com")].into_iter().collect();
        assert_eq!(h.to_string(), "Host: example.com\n");
    }

    #[test]
    fn cache_control_max_age_parses_case_insensitively() {
        let h: Headers = [("cache-control", "public, MAX-AGE=60")]
            .into_iter()
            .collect();
        assert_eq!(h.cache_max_age(), Some(60));
        assert!(!h.cache_no_store());

        let h: Headers = [("Cache-Control", "max-age=abc")].into_iter().collect();
        assert_eq!(h.cache_max_age(), None);

        let h = Headers::new();
        assert_eq!(h.cache_max_age(), None);
        assert!(!h.cache_no_store());
    }

    #[test]
    fn cache_control_no_store_wins_even_next_to_max_age() {
        let h: Headers = [("Cache-Control", "No-Store, max-age=300")]
            .into_iter()
            .collect();
        assert!(h.cache_no_store());
        assert_eq!(h.cache_max_age(), Some(300));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: Headers = [("A", "1")].into_iter().collect();
        h.extend([("B", "2")]);
        assert!(h.contains("a"));
        assert!(h.contains("b"));
        assert!(!h.is_empty());
    }
}
