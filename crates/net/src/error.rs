//! Error types for the network substrate.

use std::error::Error;
use std::fmt;

use escudo_core::ConfigError;

/// Errors produced by the in-memory network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A URL could not be parsed.
    InvalidUrl(String),
    /// A cookie string (`Set-Cookie` or `Cookie`) could not be parsed.
    InvalidCookie(String),
    /// No server is registered for the requested host.
    HostUnreachable(String),
    /// A pooled fetch worker panicked while dispatching this request (the
    /// origin's handler raised); the rest of the batch is unaffected.
    FetchPanicked(String),
    /// An HTTP method string was not recognized.
    InvalidMethod(String),
    /// An ESCUDO configuration carried in headers was malformed.
    Config(ConfigError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidUrl(s) => write!(f, "invalid url `{s}`"),
            NetError::InvalidCookie(s) => write!(f, "invalid cookie `{s}`"),
            NetError::HostUnreachable(host) => write!(f, "no server registered for `{host}`"),
            NetError::FetchPanicked(what) => write!(f, "fetch worker panicked: {what}"),
            NetError::InvalidMethod(m) => write!(f, "invalid http method `{m}`"),
            NetError::Config(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for NetError {
    fn from(e: ConfigError) -> Self {
        NetError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_std_errors() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<NetError>();
    }

    #[test]
    fn config_errors_are_wrapped_with_a_source() {
        let e: NetError = ConfigError::InvalidRing("x".into()).into();
        assert!(e.to_string().contains("invalid ring"));
        assert!(e.source().is_some());
    }
}
