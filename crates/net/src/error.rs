//! Error types for the network substrate.

use std::error::Error;
use std::fmt;

use escudo_core::ConfigError;

/// Errors produced by the in-memory network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A URL could not be parsed.
    InvalidUrl(String),
    /// A cookie string (`Set-Cookie` or `Cookie`) could not be parsed.
    InvalidCookie(String),
    /// No server is registered for the requested host.
    HostUnreachable(String),
    /// A pooled fetch worker panicked while dispatching this request (the
    /// origin's handler raised); the rest of the batch is unaffected.
    FetchPanicked(String),
    /// An HTTP method string was not recognized.
    InvalidMethod(String),
    /// An ESCUDO configuration carried in headers was malformed.
    Config(ConfigError),
    /// The dispatch timed out (today always by an injected
    /// [`FaultSchedule::Timeout`-class](crate::fault::FaultSchedule) fault).
    /// Carries the origin and how long the attempt had been running.
    Timeout {
        /// The origin whose dispatch timed out.
        origin: String,
        /// Elapsed service time when the timeout fired, in nanoseconds.
        elapsed_ns: u64,
    },
    /// The per-origin circuit breaker refused the dispatch outright — the
    /// origin failed too many times in a row and is cooling off. Nothing was
    /// put on the wire.
    CircuitOpen {
        /// The origin whose breaker is open.
        origin: String,
        /// Remaining cooldown before a half-open probe is admitted, in
        /// nanoseconds on the fabric clock (0 when a probe is already in
        /// flight).
        cooldown_ns: u64,
    },
}

impl NetError {
    /// `true` for failures worth retrying: injected timeouts and contained
    /// handler panics. A missing server is permanent and an open breaker is
    /// the *decision* not to retry, so neither is transient.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Timeout { .. } | NetError::FetchPanicked(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidUrl(s) => write!(f, "invalid url `{s}`"),
            NetError::InvalidCookie(s) => write!(f, "invalid cookie `{s}`"),
            NetError::HostUnreachable(host) => write!(f, "no server registered for `{host}`"),
            NetError::FetchPanicked(what) => write!(f, "fetch worker panicked: {what}"),
            NetError::InvalidMethod(m) => write!(f, "invalid http method `{m}`"),
            NetError::Config(e) => write!(f, "configuration error: {e}"),
            NetError::Timeout { origin, elapsed_ns } => {
                write!(f, "request to `{origin}` timed out after {elapsed_ns}ns")
            }
            NetError::CircuitOpen {
                origin,
                cooldown_ns,
            } => {
                write!(
                    f,
                    "circuit breaker open for `{origin}` ({cooldown_ns}ns of cooldown remaining)"
                )
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for NetError {
    fn from(e: ConfigError) -> Self {
        NetError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_std_errors() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<NetError>();
    }

    #[test]
    fn config_errors_are_wrapped_with_a_source() {
        let e: NetError = ConfigError::InvalidRing("x".into()).into();
        assert!(e.to_string().contains("invalid ring"));
        assert!(e.source().is_some());
    }

    #[test]
    fn every_variant_displays_its_context() {
        let cases: Vec<(NetError, &[&str])> = vec![
            (
                NetError::InvalidUrl("not a url".into()),
                &["invalid url", "not a url"],
            ),
            (
                NetError::InvalidCookie("a;;b".into()),
                &["invalid cookie", "a;;b"],
            ),
            (
                NetError::HostUnreachable("gone.example".into()),
                &["no server registered", "gone.example"],
            ),
            (
                NetError::FetchPanicked("slot 3".into()),
                &["fetch worker panicked", "slot 3"],
            ),
            (
                NetError::InvalidMethod("YEET".into()),
                &["invalid http method", "YEET"],
            ),
            (
                NetError::Config(ConfigError::InvalidRing("9".into())),
                &["configuration error", "invalid ring"],
            ),
            (
                NetError::Timeout {
                    origin: "http://slow.example".into(),
                    elapsed_ns: 1234,
                },
                &["timed out", "slow.example", "1234ns"],
            ),
            (
                NetError::CircuitOpen {
                    origin: "http://sick.example".into(),
                    cooldown_ns: 5678,
                },
                &["circuit breaker open", "sick.example", "5678ns"],
            ),
        ];
        for (error, fragments) in cases {
            let shown = error.to_string();
            for fragment in fragments {
                assert!(
                    shown.contains(fragment),
                    "`{shown}` should contain `{fragment}`"
                );
            }
            // Round trip: every variant clones to an equal value.
            assert_eq!(error.clone(), error);
            // Only Config wraps a source.
            assert_eq!(
                error.source().is_some(),
                matches!(error, NetError::Config(_))
            );
        }
    }

    #[test]
    fn transience_is_limited_to_timeouts_and_contained_panics() {
        assert!(NetError::Timeout {
            origin: "o".into(),
            elapsed_ns: 0
        }
        .is_transient());
        assert!(NetError::FetchPanicked("p".into()).is_transient());
        assert!(!NetError::HostUnreachable("h".into()).is_transient());
        assert!(!NetError::CircuitOpen {
            origin: "o".into(),
            cooldown_ns: 0
        }
        .is_transient());
        assert!(!NetError::InvalidUrl("u".into()).is_transient());
        assert!(!NetError::InvalidCookie("c".into()).is_transient());
        assert!(!NetError::InvalidMethod("m".into()).is_transient());
        assert!(!NetError::Config(ConfigError::InvalidRing("r".into())).is_transient());
    }
}
