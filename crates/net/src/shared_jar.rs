//! The thread-safe, host-sharded cookie store for concurrent multi-session
//! deployments.
//!
//! [`CookieJar`](crate::CookieJar) is a single-threaded value owned by one browser.
//! A server-side deployment runs many sessions at once, and ESCUDO mediates every
//! cookie `use` through the reference monitor — so the jar those sessions share must
//! be safe to hit from many OS threads without turning into a global-lock convoy.
//!
//! [`SharedCookieJar`] keeps the jar's **scope/attach split** intact: the jar answers
//! *scope* questions (which cookies are candidates for this request), while whether a
//! candidate is actually **attached** is the `use` operation of the ESCUDO model,
//! decided by the attach filter the caller (the browser's reference monitor) passes
//! to [`SharedCookieJar::cookie_header_for`].
//!
//! Layout mirrors the sharded decision cache in `escudo-core`:
//!
//! * the store is split into [`SharedCookieJar::shard_count`] shards (a power of two,
//!   so shard selection is a mask over the host hash), each an independent `Mutex`'d
//!   map of host → cookie list — sessions working different hosts never contend;
//! * every shard keeps its own stored/replaced/evicted counters and an independent
//!   capacity bound with **least-recently-stored-first** batch eviction (lowest
//!   touch index goes first; an actively refreshed session cookie is never the
//!   first casualty), so one cookie-heavy tenant can only thrash its own stripe;
//! * candidate collection probes the request host and each of its parent-domain
//!   suffixes (a `Domain=example.com` cookie lives under the `example.com` key but
//!   must be found for a request to `www.example.com`), then sorts the survivors
//!   into RFC 6265 §5.4 attach order: longest path first, then earliest creation —
//!   byte-identical to what a single-threaded [`CookieJar`](crate::CookieJar) replay
//!   of the same operations would produce, as long as the shared jar stays below
//!   its capacity bound (the single-threaded jar is unbounded and never evicts).
//!
//! Store-time admissibility (the §5.3 step-6 `Domain` gate, single-label rejection,
//! default-path computation) is the exact same [`jar::accept`](crate::jar) path the
//! single-threaded jar uses, so the two stores can never disagree on what enters.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cookie::{Cookie, SetCookie};
use crate::url::Url;

/// Default number of jar shards (a power of two so shard selection is a mask).
pub const DEFAULT_JAR_SHARD_COUNT: usize = 16;

/// Default bound on resident cookies (divided across the shards).
pub const DEFAULT_JAR_CAPACITY: usize = 16 * 1024;

/// A cookie plus two jar-global indices:
///
/// * `created` orders attachment under RFC 6265 §5.4 — replacement keeps the
///   original value (§5.3 step 11.3 preserves creation-time);
/// * `touched` orders *eviction* — bumped on every store including replacements,
///   so capacity pressure removes the least-recently-stored cookie first (§5.3
///   step 12 prioritizes by access recency, not creation order) and an actively
///   refreshed session cookie is never the first casualty.
#[derive(Debug, Clone)]
struct StoredCookie {
    cookie: Cookie,
    created: u64,
    touched: u64,
}

/// The data behind one shard's mutex: host → cookies, plus the resident count so
/// the capacity check is O(1) instead of a whole-map sweep per store.
#[derive(Debug, Default)]
struct ShardState {
    hosts: HashMap<String, Vec<StoredCookie>>,
    resident: usize,
}

/// One lock stripe of the shared jar.
#[derive(Debug, Default)]
struct JarShard {
    state: Mutex<ShardState>,
    stored: AtomicU64,
    replaced: AtomicU64,
    evicted: AtomicU64,
    expired: AtomicU64,
}

/// Counters of one jar shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JarShardStats {
    /// New cookies inserted into this shard.
    pub stored: u64,
    /// Stores that replaced an existing (name, host, path) cookie in place.
    pub replaced: u64,
    /// Cookies evicted (least-recently-stored first) because the shard hit its
    /// capacity bound.
    pub evicted: u64,
    /// Cookies lazily dropped on probe because their expiry deadline had passed.
    pub expired: u64,
    /// Cookies resident in the shard when the snapshot was taken.
    pub resident: u64,
}

/// Aggregate statistics of a [`SharedCookieJar`], derived from one pass over the
/// per-shard counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JarStats {
    /// Total new cookies inserted.
    pub stored: u64,
    /// Total in-place replacements.
    pub replaced: u64,
    /// Total capacity evictions.
    pub evicted: u64,
    /// Total expiry drops.
    pub expired: u64,
    /// Total cookies resident across all shards.
    pub resident: u64,
    /// Per-shard breakdown.
    pub shards: Vec<JarShardStats>,
}

/// FNV-1a over the host bytes. The per-shard `HashMap` uses std's independently
/// keyed SipHash, so there is no bucket-index correlation to dodge here — but the
/// high bits are still the better-mixed half of an FNV hash, and using them keeps
/// the scheme consistent with the engine's shard selection.
fn host_hash(host: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in host.bytes() {
        hash ^= u64::from(byte.to_ascii_lowercase());
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The thread-safe, host-sharded cookie store shared by concurrent sessions.
///
/// Taken by `&self` everywhere; hand sessions an `Arc<SharedCookieJar>` (that is
/// what [`Browser::with_jar`](../../escudo_browser/struct.Browser.html) threads
/// through browser- and script-initiated requests).
#[derive(Debug)]
pub struct SharedCookieJar {
    shards: Vec<JarShard>,
    /// Bound on resident cookies per shard; 0 means unbounded.
    shard_capacity: usize,
    /// Jar-global creation counter ordering cookies across hosts and shards.
    creation: AtomicU64,
}

impl Default for SharedCookieJar {
    fn default() -> Self {
        SharedCookieJar::new()
    }
}

impl SharedCookieJar {
    /// Creates a jar with the default shard count and capacity.
    #[must_use]
    pub fn new() -> Self {
        SharedCookieJar::with_shards(DEFAULT_JAR_SHARD_COUNT, DEFAULT_JAR_CAPACITY)
    }

    /// Creates a jar with an explicit shard count and total capacity.
    ///
    /// `shard_count` is rounded up to a power of two (and at least 1) so shard
    /// selection is a mask. `capacity` is divided across the shards rounding up
    /// (so the total bound can exceed `capacity` by up to `shard_count - 1`);
    /// a capacity of 0 disables the bound entirely.
    #[must_use]
    pub fn with_shards(shard_count: usize, capacity: usize) -> Self {
        let shard_count = shard_count.max(1).next_power_of_two();
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shard_count)
        };
        SharedCookieJar {
            shards: (0..shard_count).map(|_| JarShard::default()).collect(),
            shard_capacity,
            creation: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Bound on resident cookies per shard (0 when unbounded).
    #[must_use]
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Picks the shard owning a cookie-host key (high hash bits, masked).
    fn shard_for(&self, host: &str) -> &JarShard {
        &self.shards[((host_hash(host) >> 32) as usize) & (self.shards.len() - 1)]
    }

    /// Stores (or replaces) a cookie delivered by a response from `url`, applying
    /// the exact same admissibility gate as [`CookieJar::store`](crate::CookieJar):
    /// a foreign or single-label `Domain` attribute is rejected (RFC 6265 §5.3
    /// step 6), and a missing/relative `Path` takes the setting URL's default-path
    /// (§5.1.4).
    ///
    /// Replacing an existing (name, host, path) cookie keeps its creation index
    /// (§5.3 step 11.3), so the §5.4 attach order is stable under session refresh —
    /// but refreshes its eviction ("touch") index. When the owning shard is at
    /// capacity, the least-recently-stored ~eighth of the shard is evicted in one
    /// batch, so actively refreshed cookies survive and the eviction scan amortizes
    /// to O(1) per store instead of running under the lock on every insert.
    pub fn store(&self, url: &Url, directive: &SetCookie) {
        let Some(cookie) = crate::jar::accept(url, directive) else {
            return;
        };
        let now = std::time::SystemTime::now();
        let shard = self.shard_for(&cookie.host);
        let mut state = shard.state.lock().expect("jar shard lock");
        purge_expired(shard, &mut state, &cookie.host, now);
        // RFC 6265 §5.2.2: an already-expired directive (`Max-Age=0`, negative
        // `Max-Age`, past `Expires`) deletes the matching (name, host, path)
        // cookie instead of storing anything.
        if cookie.expired(now) {
            if let Some(entries) = state.hosts.get_mut(&cookie.host) {
                let before = entries.len();
                entries.retain(|s| !(s.cookie.name == cookie.name && s.cookie.path == cookie.path));
                let removed = before - entries.len();
                if entries.is_empty() {
                    state.hosts.remove(&cookie.host);
                }
                state.resident -= removed;
            }
            return;
        }
        if let Some(entries) = state.hosts.get_mut(&cookie.host) {
            if let Some(existing) = entries
                .iter_mut()
                .find(|s| s.cookie.name == cookie.name && s.cookie.path == cookie.path)
            {
                existing.cookie = cookie;
                existing.touched = self.creation.fetch_add(1, Ordering::Relaxed);
                shard.replaced.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if self.shard_capacity > 0 && state.resident >= self.shard_capacity {
            let batch = (self.shard_capacity / 8).max(1);
            let evicted = evict_least_recently_stored(&mut state, batch);
            shard.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        let created = self.creation.fetch_add(1, Ordering::Relaxed);
        let host_key = cookie.host.clone();
        state.hosts.entry(host_key).or_default().push(StoredCookie {
            cookie,
            created,
            touched: created,
        });
        state.resident += 1;
        shard.stored.fetch_add(1, Ordering::Relaxed);
    }

    /// All cookies whose scope matches a request to `url`, regardless of policy, in
    /// RFC 6265 §5.4 attach order: longest path first, then earliest creation first.
    ///
    /// Returns owned clones: candidates cross the shard-lock boundary, and the
    /// caller (the reference monitor's batch mediation) needs the name/value/origin
    /// anyway. The request host and each of its parent-domain suffixes are probed —
    /// one short-held shard lock per probe key, never all shards at once. Each probe
    /// lazily drops cookies whose expiry deadline has passed (the lock is already
    /// held, so expiry costs one `retain` pass over the probed host entry).
    #[must_use]
    pub fn candidates_for(&self, url: &Url) -> Vec<Cookie> {
        let now = std::time::SystemTime::now();
        let mut matched: Vec<StoredCookie> = Vec::new();
        for key in probe_keys(url.host()) {
            let shard = self.shard_for(&key);
            let mut state = shard.state.lock().expect("jar shard lock");
            purge_expired(shard, &mut state, &key, now);
            if let Some(entries) = state.hosts.get(&key) {
                matched.extend(
                    entries
                        .iter()
                        .filter(|s| s.cookie.in_scope(url.scheme(), url.host(), url.path()))
                        .cloned(),
                );
            }
        }
        matched.sort_by(|a, b| {
            b.cookie
                .path
                .len()
                .cmp(&a.cookie.path.len())
                .then(a.created.cmp(&b.created))
        });
        matched.into_iter().map(|s| s.cookie).collect()
    }

    /// Builds the `Cookie` request-header value for a request to `url`, attaching
    /// only the candidates accepted by `attach_filter` — the hook through which the
    /// ESCUDO reference monitor enforces the `use` operation on each cookie.
    ///
    /// Returns `None` when no cookie survives the filter (no header should be sent).
    /// For any sequence of operations that stays below the capacity bound, the
    /// result is byte-identical to replaying the same sequence against a
    /// single-threaded [`CookieJar`](crate::CookieJar) — which is unbounded, so once
    /// capacity eviction fires the shared jar may (correctly) answer with fewer
    /// cookies than the replay.
    pub fn cookie_header_for<F>(&self, url: &Url, mut attach_filter: F) -> Option<String>
    where
        F: FnMut(&Cookie) -> bool,
    {
        let attached: Vec<String> = self
            .candidates_for(url)
            .iter()
            .filter(|c| attach_filter(c))
            .map(Cookie::to_cookie_pair)
            .collect();
        if attached.is_empty() {
            None
        } else {
            Some(attached.join("; "))
        }
    }

    /// Looks up a stored cookie by host and name. When the same name exists under
    /// several paths the winner is deterministic: longest path first, then earliest
    /// creation — the §5.4 ordering [`SharedCookieJar::cookie_header_for`] attaches
    /// in.
    #[must_use]
    pub fn get(&self, host: &str, name: &str) -> Option<Cookie> {
        let key = host.to_ascii_lowercase();
        let shard = self.shard_for(&key);
        let mut state = shard.state.lock().expect("jar shard lock");
        purge_expired(shard, &mut state, &key, std::time::SystemTime::now());
        state
            .hosts
            .get(&key)?
            .iter()
            .filter(|s| s.cookie.name == name)
            .min_by_key(|s| (std::cmp::Reverse(s.cookie.path.len()), s.created))
            .map(|s| s.cookie.clone())
    }

    /// Looks up a stored cookie by host, name and exact path scope.
    #[must_use]
    pub fn get_with_path(&self, host: &str, name: &str, path: &str) -> Option<Cookie> {
        let key = host.to_ascii_lowercase();
        let shard = self.shard_for(&key);
        let mut state = shard.state.lock().expect("jar shard lock");
        purge_expired(shard, &mut state, &key, std::time::SystemTime::now());
        state
            .hosts
            .get(&key)?
            .iter()
            .find(|s| s.cookie.name == name && s.cookie.path == path)
            .map(|s| s.cookie.clone())
    }

    /// Removes the single (host, name) cookie that wins the §5.4 ordering — longest
    /// path first, then earliest creation. Returns `true` if one was removed.
    pub fn remove(&self, host: &str, name: &str) -> bool {
        let key = host.to_ascii_lowercase();
        let shard = self.shard_for(&key);
        let mut state = shard.state.lock().expect("jar shard lock");
        // Expired cookies are purged first so the §5.4 victim selection can
        // never pick an expired ghost over the live cookie `get` would return.
        purge_expired(shard, &mut state, &key, std::time::SystemTime::now());
        let Some(entries) = state.hosts.get_mut(&key) else {
            return false;
        };
        let victim = entries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cookie.name == name)
            .min_by_key(|(_, s)| (std::cmp::Reverse(s.cookie.path.len()), s.created))
            .map(|(index, _)| index);
        match victim {
            Some(index) => {
                entries.remove(index);
                if entries.is_empty() {
                    state.hosts.remove(&key);
                }
                state.resident -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes the cookie with exactly this (host, name, path) scope. Returns `true`
    /// if one was removed.
    pub fn remove_with_path(&self, host: &str, name: &str, path: &str) -> bool {
        let key = host.to_ascii_lowercase();
        let shard = self.shard_for(&key);
        let mut state = shard.state.lock().expect("jar shard lock");
        purge_expired(shard, &mut state, &key, std::time::SystemTime::now());
        let Some(entries) = state.hosts.get_mut(&key) else {
            return false;
        };
        let before = entries.len();
        entries.retain(|s| !(s.cookie.name == name && s.cookie.path == path));
        let removed = before - entries.len();
        if entries.is_empty() {
            state.hosts.remove(&key);
        }
        state.resident -= removed;
        removed > 0
    }

    /// The number of stored cookies (sums the per-shard resident counts; each shard
    /// lock is held only long enough to read one integer).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.state.lock().expect("jar shard lock").resident)
            .sum()
    }

    /// `true` when no cookies are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every stored cookie in creation order. (The shared jar cannot
    /// hand out references across its shard locks the way
    /// [`CookieJar::iter`](crate::CookieJar::iter) does, so inspection works on a
    /// point-in-time copy.)
    #[must_use]
    pub fn snapshot(&self) -> Vec<Cookie> {
        let mut all: Vec<StoredCookie> = Vec::new();
        for shard in &self.shards {
            let state = shard.state.lock().expect("jar shard lock");
            all.extend(state.hosts.values().flatten().cloned());
        }
        all.sort_by_key(|s| s.created);
        all.into_iter().map(|s| s.cookie).collect()
    }

    /// Aggregate statistics from one pass over the per-shard counters.
    #[must_use]
    pub fn stats(&self) -> JarStats {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut total = JarStats::default();
        for shard in &self.shards {
            let snapshot = JarShardStats {
                stored: shard.stored.load(Ordering::Relaxed),
                replaced: shard.replaced.load(Ordering::Relaxed),
                evicted: shard.evicted.load(Ordering::Relaxed),
                expired: shard.expired.load(Ordering::Relaxed),
                resident: shard.state.lock().expect("jar shard lock").resident as u64,
            };
            total.stored += snapshot.stored;
            total.replaced += snapshot.replaced;
            total.evicted += snapshot.evicted;
            total.expired += snapshot.expired;
            total.resident += snapshot.resident;
            shards.push(snapshot);
        }
        total.shards = shards;
        total
    }
}

impl fmt::Display for SharedCookieJar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared cookie jar with {} cookies over {} shards",
            self.len(),
            self.shards.len()
        )
    }
}

/// Drops every expired cookie under `key` while the shard lock is held: one
/// `retain` pass over the probed host entry, resident count and the shard's
/// `expired` counter updated to match. This is the "lazy expiry" half of the
/// cookie-lifetime model — nothing sweeps the jar in the background; deadlines
/// are enforced at the next probe of the host that holds them.
fn purge_expired(shard: &JarShard, state: &mut ShardState, key: &str, now: std::time::SystemTime) {
    let Some(entries) = state.hosts.get_mut(key) else {
        return;
    };
    let before = entries.len();
    entries.retain(|s| !s.cookie.expired(now));
    let removed = before - entries.len();
    if removed > 0 {
        if entries.is_empty() {
            state.hosts.remove(key);
        }
        state.resident -= removed;
        shard.expired.fetch_add(removed as u64, Ordering::Relaxed);
    }
}

/// Evicts the `count` least-recently-stored cookies (lowest touch index) from the
/// shard in one pass, returning how many were removed. Touch indices are unique
/// (one global counter value per store), so selecting the `count`-th smallest gives
/// an exact threshold: everything at or below it is evicted, nothing else.
///
/// Batching matters: evicting one cookie per insert would rescan the whole shard
/// under its mutex on *every* store once the shard fills (a store-path convoy);
/// evicting a batch amortizes one scan over `count` subsequent inserts.
fn evict_least_recently_stored(state: &mut ShardState, count: usize) -> usize {
    let mut touches: Vec<u64> = state.hosts.values().flatten().map(|s| s.touched).collect();
    if touches.is_empty() {
        return 0;
    }
    let count = count.min(touches.len());
    let (_, threshold, _) = touches.select_nth_unstable(count - 1);
    let threshold = *threshold;
    state.hosts.retain(|_, entries| {
        entries.retain(|s| s.touched > threshold);
        !entries.is_empty()
    });
    state.resident -= count;
    count
}

/// The host keys a request to `host` must probe: the host itself plus every
/// parent-domain suffix (a `Domain=example.com` cookie is stored under
/// `example.com` but matches requests to `www.example.com`). Scope checking
/// proper still happens per cookie via [`Cookie::in_scope`]; the keys only bound
/// which map entries can possibly hold matches.
fn probe_keys(host: &str) -> Vec<String> {
    let host = host.to_ascii_lowercase();
    let mut keys = Vec::with_capacity(4);
    let mut rest = host.as_str();
    keys.push(host.clone());
    while let Some(dot) = rest.find('.') {
        rest = &rest[dot + 1..];
        if !rest.is_empty() {
            keys.push(rest.to_string());
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CookieJar;
    use std::time::Duration;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn store_scope_and_header_match_the_single_threaded_jar() {
        let shared = SharedCookieJar::new();
        let mut plain = CookieJar::new();
        let ops = [
            ("http://forum.example/login.php", "sid=s1; HttpOnly"),
            ("http://forum.example/login.php", "data=d1"),
            ("http://forum.example/forum/admin/tool.php", "admin=a1"),
            ("http://www.example.com/", "wide=w1; Domain=example.com"),
            ("http://other.example/", "sid=o1"),
            ("http://forum.example/login.php", "sid=s2; HttpOnly"),
        ];
        for (setting, header) in ops {
            let directive = SetCookie::parse(header).unwrap();
            shared.store(&url(setting), &directive);
            plain.store(&url(setting), &directive);
        }
        assert_eq!(shared.len(), plain.len());
        for request in [
            "http://forum.example/viewtopic.php",
            "http://forum.example/forum/admin/index.php",
            "http://www.example.com/",
            "http://shop.example.com/cart",
            "http://other.example/x",
            "http://unrelated.example/",
        ] {
            assert_eq!(
                shared.cookie_header_for(&url(request), |_| true),
                plain.cookie_header_for(&url(request), |_| true),
                "for request {request:?}"
            );
        }
    }

    #[test]
    fn domain_cookies_are_found_across_shards_via_suffix_probing() {
        let jar = SharedCookieJar::with_shards(8, 0);
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie::parse("wide=1; Domain=example.com").unwrap(),
        );
        jar.store(&url("http://www.example.com/"), &SetCookie::new("own", "2"));
        // The domain cookie lives under the `example.com` key (possibly a different
        // shard than `www.example.com`) but matches the subdomain request.
        let header = jar
            .cookie_header_for(&url("http://www.example.com/"), |_| true)
            .unwrap();
        assert!(header.contains("wide=1"));
        assert!(header.contains("own=2"));
        // The host-only cookie must not leak to a sibling subdomain.
        assert_eq!(
            jar.cookie_header_for(&url("http://shop.example.com/"), |_| true)
                .as_deref(),
            Some("wide=1")
        );
    }

    #[test]
    fn attach_filter_enforces_the_use_decision() {
        let jar = SharedCookieJar::new();
        jar.store(&url("http://forum.example/"), &SetCookie::new("sid", "s1"));
        jar.store(
            &url("http://forum.example/"),
            &SetCookie::new("tracking", "t1"),
        );
        let header = jar
            .cookie_header_for(&url("http://forum.example/post"), |c| c.name == "tracking")
            .unwrap();
        assert_eq!(header, "tracking=t1");
        assert!(jar
            .cookie_header_for(&url("http://forum.example/post"), |_| false)
            .is_none());
    }

    #[test]
    fn foreign_domain_attribute_is_rejected_like_the_plain_jar() {
        let jar = SharedCookieJar::new();
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("forum.example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty(), "foreign-domain cookie must be ignored");
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty(), "single-label domain must be ignored");
    }

    #[test]
    fn get_and_remove_are_path_deterministic() {
        let jar = SharedCookieJar::new();
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("sid", "root").with_path("/"),
        );
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("sid", "forum").with_path("/forum"),
        );
        assert_eq!(jar.get("x.example", "sid").unwrap().value, "forum");
        assert_eq!(
            jar.get_with_path("x.example", "sid", "/").unwrap().value,
            "root"
        );
        assert!(jar.remove("x.example", "sid"));
        assert_eq!(jar.get("x.example", "sid").unwrap().value, "root");
        assert!(jar.remove_with_path("x.example", "sid", "/"));
        assert!(jar.is_empty());
    }

    #[test]
    fn replacement_keeps_creation_order_and_counts() {
        let jar = SharedCookieJar::new();
        jar.store(&url("http://x.example/"), &SetCookie::new("a", "1"));
        jar.store(&url("http://x.example/"), &SetCookie::new("b", "2"));
        jar.store(&url("http://x.example/"), &SetCookie::new("a", "9"));
        assert_eq!(jar.len(), 2);
        let header = jar
            .cookie_header_for(&url("http://x.example/"), |_| true)
            .unwrap();
        // `a` keeps its original creation position despite being replaced last.
        assert_eq!(header, "a=9; b=2");
        let stats = jar.stats();
        assert_eq!(stats.stored, 2);
        assert_eq!(stats.replaced, 1);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.resident, 2);
    }

    #[test]
    fn shard_capacity_evicts_least_recently_stored_first() {
        // One shard, three slots (batch size 3/8 → 1): the fourth insert evicts one.
        let jar = SharedCookieJar::with_shards(1, 3);
        assert_eq!(jar.shard_count(), 1);
        assert_eq!(jar.shard_capacity(), 3);
        jar.store(&url("http://a.example/"), &SetCookie::new("oldest", "1"));
        jar.store(&url("http://b.example/"), &SetCookie::new("mid", "2"));
        jar.store(&url("http://c.example/"), &SetCookie::new("new", "3"));
        jar.store(&url("http://d.example/"), &SetCookie::new("newest", "4"));
        assert_eq!(jar.len(), 3);
        assert!(jar.get("a.example", "oldest").is_none(), "oldest evicted");
        assert!(jar.get("b.example", "mid").is_some());
        assert!(jar.get("d.example", "newest").is_some());
        let stats = jar.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.resident, 3);
        // Replacement never evicts: it does not grow the shard.
        jar.store(&url("http://d.example/"), &SetCookie::new("newest", "5"));
        assert_eq!(jar.stats().evicted, 1);
    }

    #[test]
    fn refreshing_a_cookie_protects_it_from_eviction() {
        // §5.3 step 12 evicts by store recency, not creation order: a session
        // cookie refreshed on every response must outlive stale cookies stored
        // after it.
        let jar = SharedCookieJar::with_shards(1, 3);
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "live1"));
        jar.store(&url("http://b.example/"), &SetCookie::new("stale", "1"));
        jar.store(&url("http://c.example/"), &SetCookie::new("other", "1"));
        // The server refreshes the session cookie (in-place replacement bumps the
        // touch index but keeps the creation index, so §5.4 order is unchanged).
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "live2"));
        // Capacity pressure now evicts `stale` — the least recently *stored* —
        // not the oldest-created but actively refreshed `sid`.
        jar.store(&url("http://d.example/"), &SetCookie::new("fresh", "1"));
        assert_eq!(jar.get("a.example", "sid").unwrap().value, "live2");
        assert!(jar.get("b.example", "stale").is_none(), "stale evicted");
        assert!(jar.get("d.example", "fresh").is_some());
        assert_eq!(jar.stats().evicted, 1);
    }

    #[test]
    fn large_shards_evict_in_batches() {
        // Capacity 64 in one shard → batch size 8: the insert that hits the bound
        // evicts the 8 least-recently-stored cookies in one pass, then the next 7
        // inserts proceed without scanning.
        let jar = SharedCookieJar::with_shards(1, 64);
        for i in 0..64 {
            jar.store(
                &url(&format!("http://h{i}.example/")),
                &SetCookie::new("c", "1"),
            );
        }
        assert_eq!(jar.len(), 64);
        jar.store(&url("http://trigger.example/"), &SetCookie::new("c", "1"));
        let stats = jar.stats();
        assert_eq!(stats.evicted, 8);
        assert_eq!(stats.resident, 64 - 8 + 1);
        // The eight earliest-stored hosts are gone; later ones survive.
        for i in 0..8 {
            assert!(jar.get(&format!("h{i}.example"), "c").is_none(), "h{i}");
        }
        for i in 8..64 {
            assert!(jar.get(&format!("h{i}.example"), "c").is_some(), "h{i}");
        }
    }

    #[test]
    fn expired_cookies_are_lazily_dropped_on_probe() {
        let jar = SharedCookieJar::new();
        jar.store(&url("http://a.example/"), &SetCookie::new("live", "1"));
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("stale", "1").with_max_age(3600),
        );
        assert_eq!(jar.len(), 2);
        // Backdate the stale cookie's deadline (store-time `now` is opaque):
        // replace it with a directive that is pre-expired. Per §5.2.2 this is a
        // deletion — so instead exercise the probe path with a genuinely expired
        // resident cookie by re-storing with a 0-second lifetime backdated via
        // Expires in the past.
        let mut pre_expired = SetCookie::new("stale", "2");
        pre_expired.expires = Some(std::time::SystemTime::UNIX_EPOCH + Duration::from_secs(1));
        jar.store(&url("http://a.example/"), &pre_expired);
        // The expired-at-store directive deleted the resident cookie.
        assert_eq!(jar.len(), 1);
        assert!(jar.get("a.example", "stale").is_none());
        assert_eq!(
            jar.cookie_header_for(&url("http://a.example/"), |_| true)
                .as_deref(),
            Some("live=1")
        );

        // Max-Age=0 deletion on the remaining cookie.
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("live", "").with_max_age(0),
        );
        assert!(jar.is_empty());
        assert!(jar
            .cookie_header_for(&url("http://a.example/"), |_| true)
            .is_none());
    }

    #[test]
    fn probe_purges_cookies_that_expire_while_resident() {
        let jar = SharedCookieJar::with_shards(1, 0);
        jar.store(&url("http://a.example/"), &SetCookie::new("keep", "1"));
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("brief", "1").with_max_age(3600),
        );
        // Backdate the resident cookie's deadline through the shard directly.
        {
            let mut state = jar.shards[0].state.lock().unwrap();
            state
                .hosts
                .get_mut("a.example")
                .unwrap()
                .iter_mut()
                .find(|s| s.cookie.name == "brief")
                .unwrap()
                .cookie
                .expires_at = Some(std::time::SystemTime::UNIX_EPOCH);
        }
        // The next probe physically removes it and counts the drop.
        assert_eq!(
            jar.cookie_header_for(&url("http://a.example/"), |_| true)
                .as_deref(),
            Some("keep=1")
        );
        assert_eq!(jar.len(), 1);
        let stats = jar.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(SharedCookieJar::with_shards(0, 0).shard_count(), 1);
        assert_eq!(SharedCookieJar::with_shards(3, 0).shard_count(), 4);
        assert_eq!(SharedCookieJar::with_shards(16, 0).shard_count(), 16);
    }

    #[test]
    fn snapshot_returns_creation_order() {
        let jar = SharedCookieJar::new();
        jar.store(&url("http://a.example/"), &SetCookie::new("first", "1"));
        jar.store(&url("http://b.example/"), &SetCookie::new("second", "2"));
        jar.store(&url("http://c.example/"), &SetCookie::new("third", "3"));
        let names: Vec<String> = jar.snapshot().into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
        assert_eq!(
            jar.to_string(),
            "shared cookie jar with 3 cookies over 16 shards"
        );
    }

    #[test]
    fn probe_keys_cover_every_parent_suffix() {
        assert_eq!(
            probe_keys("A.B.Example.COM"),
            vec!["a.b.example.com", "b.example.com", "example.com", "com"]
        );
        assert_eq!(probe_keys("localhost"), vec!["localhost"]);
        assert_eq!(probe_keys("x."), vec!["x."]);
    }
}
