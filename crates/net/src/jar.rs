//! The browser's cookie store.
//!
//! The jar stores cookies and answers *scope* questions ("which cookies are candidates
//! for this request?"). Whether a candidate is actually **attached** is the `use`
//! operation of the ESCUDO model and is decided by the caller (the browser's reference
//! monitor) through the filter passed to [`CookieJar::cookie_header_for`]. Under the
//! same-origin-policy baseline the filter simply accepts everything, reproducing the
//! legacy behaviour that makes CSRF possible.

use std::fmt;

use crate::cookie::{Cookie, SetCookie};
use crate::url::Url;

/// The browser-wide cookie store.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    /// Creates an empty jar.
    #[must_use]
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Stores (or replaces) a cookie delivered by a response from `url`.
    ///
    /// A directive whose explicit `Domain` attribute does not cover the setting host
    /// is ignored entirely (RFC 6265 §5.3 step 6) — otherwise any origin could plant
    /// session cookies for any other domain (cookie injection / session fixation).
    /// Single-label domains (`Domain=example`, `Domain=com`) are likewise rejected
    /// unless they *are* the setting host: without a public-suffix list, a shared
    /// top-level label would still let `attacker.example` set a cookie that scopes
    /// over every `*.example` site.
    pub fn store(&mut self, url: &Url, directive: &SetCookie) {
        if let Some(domain) = directive.normalized_domain() {
            if !domain.contains('.') && !domain.eq_ignore_ascii_case(url.host()) {
                return;
            }
            if !crate::cookie::domain_matches(domain, url.host()) {
                return;
            }
        }
        let cookie = Cookie::from_set_cookie(directive, url.scheme(), url.host(), url.port());
        // Replace an existing cookie with the same (name, host, path) triple.
        if let Some(existing) = self
            .cookies
            .iter_mut()
            .find(|c| c.name == cookie.name && c.host == cookie.host && c.path == cookie.path)
        {
            *existing = cookie;
        } else {
            self.cookies.push(cookie);
        }
    }

    /// All cookies whose scope matches a request to `url`, regardless of policy.
    #[must_use]
    pub fn candidates_for(&self, url: &Url) -> Vec<&Cookie> {
        self.cookies
            .iter()
            .filter(|c| c.in_scope(url.scheme(), url.host(), url.path()))
            .collect()
    }

    /// Builds the `Cookie` request-header value for a request to `url`, attaching only
    /// the candidates accepted by `attach_filter` — the hook through which the ESCUDO
    /// reference monitor enforces the `use` operation on each cookie.
    ///
    /// Returns `None` when no cookie survives the filter (no header should be sent).
    pub fn cookie_header_for<F>(&self, url: &Url, mut attach_filter: F) -> Option<String>
    where
        F: FnMut(&Cookie) -> bool,
    {
        let attached: Vec<String> = self
            .candidates_for(url)
            .into_iter()
            .filter(|c| attach_filter(c))
            .map(Cookie::to_cookie_pair)
            .collect();
        if attached.is_empty() {
            None
        } else {
            Some(attached.join("; "))
        }
    }

    /// Looks up a stored cookie by host and name.
    #[must_use]
    pub fn get(&self, host: &str, name: &str) -> Option<&Cookie> {
        self.cookies
            .iter()
            .find(|c| c.host.eq_ignore_ascii_case(host) && c.name == name)
    }

    /// Removes a cookie by host and name. Returns `true` if one was removed.
    pub fn remove(&mut self, host: &str, name: &str) -> bool {
        let before = self.cookies.len();
        self.cookies
            .retain(|c| !(c.host.eq_ignore_ascii_case(host) && c.name == name));
        before != self.cookies.len()
    }

    /// Iterates over every stored cookie.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    /// The number of stored cookies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// `true` when no cookies are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

impl fmt::Display for CookieJar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie jar with {} cookies", self.cookies.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn store_and_candidates() {
        let mut jar = CookieJar::new();
        jar.store(
            &url("http://forum.example/login"),
            &SetCookie::new("sid", "s1"),
        );
        jar.store(
            &url("http://forum.example/login"),
            &SetCookie::new("data", "d1"),
        );
        jar.store(&url("http://other.example/"), &SetCookie::new("sid", "o1"));

        let candidates = jar.candidates_for(&url("http://forum.example/viewtopic.php"));
        let names: Vec<&str> = candidates.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["sid", "data"]);
        assert_eq!(jar.len(), 3);
    }

    #[test]
    fn storing_again_replaces_the_value() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "old"));
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "new"));
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.get("a.example", "sid").unwrap().value, "new");
    }

    #[test]
    fn header_respects_the_attach_filter() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://forum.example/"), &SetCookie::new("sid", "s1"));
        jar.store(
            &url("http://forum.example/"),
            &SetCookie::new("tracking", "t1"),
        );

        // Permissive filter (the SOP baseline): everything in scope is attached.
        let header = jar
            .cookie_header_for(&url("http://forum.example/post"), |_| true)
            .unwrap();
        assert!(header.contains("sid=s1"));
        assert!(header.contains("tracking=t1"));

        // Policy filter that only admits the tracking cookie.
        let header = jar
            .cookie_header_for(&url("http://forum.example/post"), |c| c.name == "tracking")
            .unwrap();
        assert_eq!(header, "tracking=t1");

        // Filter that rejects everything: no Cookie header at all.
        assert!(jar
            .cookie_header_for(&url("http://forum.example/post"), |_| false)
            .is_none());
    }

    #[test]
    fn cross_site_requests_see_no_candidates() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://forum.example/"), &SetCookie::new("sid", "s1"));
        assert!(jar.candidates_for(&url("http://evil.example/")).is_empty());
        // …but a request *to* forum.example triggered by evil.example still has the
        // cookie in scope — that is exactly the CSRF problem ESCUDO's `use` check fixes.
        assert_eq!(
            jar.candidates_for(&url("http://forum.example/post")).len(),
            1
        );
    }

    #[test]
    fn foreign_domain_attribute_is_rejected_at_store_time() {
        let mut jar = CookieJar::new();
        // RFC 6265 §5.3 step 6: attacker.example cannot plant a cookie for
        // forum.example.
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("forum.example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty(), "foreign-domain cookie must be ignored");
        assert!(jar.candidates_for(&url("http://forum.example/")).is_empty());

        // A Domain covering the setting host (parent domain) is legitimate…
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some("example.com".into()),
                ..SetCookie::new("sid", "ok")
            },
        );
        assert_eq!(jar.len(), 1);
        assert_eq!(
            jar.candidates_for(&url("http://shop.example.com/")).len(),
            1
        );

        // …but a *sibling* or unrelated domain is not.
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some("shop.example.com".into()),
                ..SetCookie::new("x", "1")
            },
        );
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn single_label_domain_cannot_scope_over_a_whole_tld() {
        let mut jar = CookieJar::new();
        // attacker.example suffix-matches `example`, but a single-label Domain is a
        // registrable suffix here (no public-suffix list) — rejected, or the cookie
        // would reach forum.example, blog.example, every *.example site.
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty());
        assert!(jar.candidates_for(&url("http://forum.example/")).is_empty());

        // A single-label *host* may still name itself (intranet/localhost style).
        jar.store(
            &url("http://intranet/"),
            &SetCookie {
                domain: Some("intranet".into()),
                ..SetCookie::new("sid", "ok")
            },
        );
        assert_eq!(jar.candidates_for(&url("http://intranet/")).len(), 1);
    }

    #[test]
    fn programmatic_directives_are_normalized_at_store_time() {
        let mut jar = CookieJar::new();
        // A raw leading-dot Domain built in code (bypassing the parser) is
        // normalized, not silently dropped.
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some(".example.com".into()),
                ..SetCookie::new("sid", "s1")
            },
        );
        assert_eq!(
            jar.candidates_for(&url("http://shop.example.com/")).len(),
            1
        );

        // A raw empty Domain means "no attribute": stored host-only, not rejected.
        jar.store(
            &url("http://forum.example/"),
            &SetCookie {
                domain: Some(String::new()),
                ..SetCookie::new("sid", "s2")
            },
        );
        let stored = jar.get("forum.example", "sid").expect("stored host-only");
        assert!(stored.host_only);
        assert_eq!(jar.candidates_for(&url("http://a.forum.example/")).len(), 0);
    }

    #[test]
    fn remove_and_empty() {
        let mut jar = CookieJar::new();
        assert!(jar.is_empty());
        jar.store(&url("http://a.example/"), &SetCookie::new("x", "1"));
        assert!(jar.remove("a.example", "x"));
        assert!(!jar.remove("a.example", "x"));
        assert!(jar.is_empty());
    }
}
