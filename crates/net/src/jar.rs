//! The browser's cookie store.
//!
//! The jar stores cookies and answers *scope* questions ("which cookies are candidates
//! for this request?"). Whether a candidate is actually **attached** is the `use`
//! operation of the ESCUDO model and is decided by the caller (the browser's reference
//! monitor) through the filter passed to [`CookieJar::cookie_header_for`]. Under the
//! same-origin-policy baseline the filter simply accepts everything, reproducing the
//! legacy behaviour that makes CSRF possible.

use std::fmt;

use crate::cookie::{Cookie, SetCookie};
use crate::url::Url;

/// The browser-wide cookie store.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    /// Creates an empty jar.
    #[must_use]
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Stores (or replaces) a cookie delivered by a response from `url`.
    ///
    /// A directive whose explicit `Domain` attribute does not cover the setting host
    /// is ignored entirely (RFC 6265 §5.3 step 6) — otherwise any origin could plant
    /// session cookies for any other domain (cookie injection / session fixation).
    /// Single-label domains (`Domain=example`, `Domain=com`) are likewise rejected
    /// unless they *are* the setting host: without a public-suffix list, a shared
    /// top-level label would still let `attacker.example` set a cookie that scopes
    /// over every `*.example` site.
    pub fn store(&mut self, url: &Url, directive: &SetCookie) {
        let now = std::time::SystemTime::now();
        // Lazy expiry: the store path is the jar's only `&mut self` probe, so this
        // is where cookies whose deadline has passed are physically dropped (the
        // `&self` read paths filter them instead).
        self.cookies.retain(|c| !c.expired(now));
        let Some(cookie) = accept(url, directive) else {
            return;
        };
        // RFC 6265 §5.2.2: a directive that is already expired at store time
        // (`Max-Age=0`, negative `Max-Age`, past `Expires`) *deletes* the matching
        // (name, host, path) cookie instead of storing anything.
        if cookie.expired(now) {
            self.cookies.retain(|c| {
                !(c.name == cookie.name && c.host == cookie.host && c.path == cookie.path)
            });
            return;
        }
        // Replace an existing cookie with the same (name, host, path) triple. The
        // replaced cookie keeps its position in the vector, i.e. its creation order —
        // RFC 6265 §5.3 step 11.3 preserves the original creation-time on update.
        if let Some(existing) = self
            .cookies
            .iter_mut()
            .find(|c| c.name == cookie.name && c.host == cookie.host && c.path == cookie.path)
        {
            *existing = cookie;
        } else {
            self.cookies.push(cookie);
        }
    }

    /// All cookies whose scope matches a request to `url`, regardless of policy, in
    /// RFC 6265 §5.4 attach order: longest path first, then earliest creation first
    /// (the stable sort preserves the vector's insertion order, which *is* creation
    /// order — replacement updates in place). Expired cookies never match.
    #[must_use]
    pub fn candidates_for(&self, url: &Url) -> Vec<&Cookie> {
        let now = std::time::SystemTime::now();
        let mut candidates: Vec<&Cookie> = self
            .cookies
            .iter()
            .filter(|c| !c.expired(now) && c.in_scope(url.scheme(), url.host(), url.path()))
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.path.len()));
        candidates
    }

    /// Builds the `Cookie` request-header value for a request to `url`, attaching only
    /// the candidates accepted by `attach_filter` — the hook through which the ESCUDO
    /// reference monitor enforces the `use` operation on each cookie.
    ///
    /// Returns `None` when no cookie survives the filter (no header should be sent).
    pub fn cookie_header_for<F>(&self, url: &Url, mut attach_filter: F) -> Option<String>
    where
        F: FnMut(&Cookie) -> bool,
    {
        let attached: Vec<String> = self
            .candidates_for(url)
            .into_iter()
            .filter(|c| attach_filter(c))
            .map(Cookie::to_cookie_pair)
            .collect();
        if attached.is_empty() {
            None
        } else {
            Some(attached.join("; "))
        }
    }

    /// Looks up a stored cookie by host and name. When the same name exists under
    /// several paths the winner is deterministic: longest path first, then earliest
    /// creation — the same §5.4 ordering [`CookieJar::cookie_header_for`] attaches in.
    #[must_use]
    pub fn get(&self, host: &str, name: &str) -> Option<&Cookie> {
        let now = std::time::SystemTime::now();
        self.cookies
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.expired(now) && c.host.eq_ignore_ascii_case(host) && c.name == name)
            .min_by_key(|(index, c)| (std::cmp::Reverse(c.path.len()), *index))
            .map(|(_, c)| c)
    }

    /// Looks up a stored cookie by host, name and exact path scope.
    #[must_use]
    pub fn get_with_path(&self, host: &str, name: &str, path: &str) -> Option<&Cookie> {
        let now = std::time::SystemTime::now();
        self.cookies.iter().find(|c| {
            !c.expired(now) && c.host.eq_ignore_ascii_case(host) && c.name == name && c.path == path
        })
    }

    /// Removes the single (host, name) cookie that wins the §5.4 ordering — longest
    /// path first, then earliest creation — leaving same-name cookies under other
    /// paths in place. Returns `true` if one was removed. Expired cookies are
    /// invisible here exactly as they are to [`CookieJar::get`], so `remove` can
    /// never delete an expired ghost while the live cookie `get` returns survives.
    pub fn remove(&mut self, host: &str, name: &str) -> bool {
        let now = std::time::SystemTime::now();
        let victim = self
            .cookies
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.expired(now) && c.host.eq_ignore_ascii_case(host) && c.name == name)
            .min_by_key(|(index, c)| (std::cmp::Reverse(c.path.len()), *index))
            .map(|(index, _)| index);
        match victim {
            Some(index) => {
                self.cookies.remove(index);
                true
            }
            None => false,
        }
    }

    /// Removes the cookie with exactly this (host, name, path) scope. Returns `true`
    /// if one was removed.
    pub fn remove_with_path(&mut self, host: &str, name: &str, path: &str) -> bool {
        let before = self.cookies.len();
        self.cookies
            .retain(|c| !(c.host.eq_ignore_ascii_case(host) && c.name == name && c.path == path));
        before != self.cookies.len()
    }

    /// Iterates over every stored cookie.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    /// The number of stored cookies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// `true` when no cookies are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

impl fmt::Display for CookieJar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie jar with {} cookies", self.cookies.len())
    }
}

/// Validates a `Set-Cookie` directive delivered by a response from `url` and builds
/// the stored cookie, or returns `None` when the directive must be ignored.
///
/// This is the single store-time gate shared by [`CookieJar`] and
/// [`SharedCookieJar`](crate::SharedCookieJar), so the two jars can never disagree
/// on what is admissible:
///
/// * an explicit `Domain` attribute that does not cover the setting host is rejected
///   (RFC 6265 §5.3 step 6) — otherwise any origin could plant session cookies for
///   any other domain (cookie injection / session fixation);
/// * a single-label domain (`Domain=example`, `Domain=com`) is rejected unless it
///   *is* the setting host: without a public-suffix list, a shared top-level label
///   would still let `attacker.example` set a cookie scoping over every `*.example`.
pub(crate) fn accept(url: &Url, directive: &SetCookie) -> Option<Cookie> {
    if let Some(domain) = directive.normalized_domain() {
        if !domain.contains('.') && !domain.eq_ignore_ascii_case(url.host()) {
            return None;
        }
        if !crate::cookie::domain_matches(domain, url.host()) {
            return None;
        }
    }
    Some(Cookie::from_set_cookie(directive, url))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn store_and_candidates() {
        let mut jar = CookieJar::new();
        jar.store(
            &url("http://forum.example/login"),
            &SetCookie::new("sid", "s1"),
        );
        jar.store(
            &url("http://forum.example/login"),
            &SetCookie::new("data", "d1"),
        );
        jar.store(&url("http://other.example/"), &SetCookie::new("sid", "o1"));

        let candidates = jar.candidates_for(&url("http://forum.example/viewtopic.php"));
        let names: Vec<&str> = candidates.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["sid", "data"]);
        assert_eq!(jar.len(), 3);
    }

    #[test]
    fn storing_again_replaces_the_value() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "old"));
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "new"));
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.get("a.example", "sid").unwrap().value, "new");
    }

    #[test]
    fn header_respects_the_attach_filter() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://forum.example/"), &SetCookie::new("sid", "s1"));
        jar.store(
            &url("http://forum.example/"),
            &SetCookie::new("tracking", "t1"),
        );

        // Permissive filter (the SOP baseline): everything in scope is attached.
        let header = jar
            .cookie_header_for(&url("http://forum.example/post"), |_| true)
            .unwrap();
        assert!(header.contains("sid=s1"));
        assert!(header.contains("tracking=t1"));

        // Policy filter that only admits the tracking cookie.
        let header = jar
            .cookie_header_for(&url("http://forum.example/post"), |c| c.name == "tracking")
            .unwrap();
        assert_eq!(header, "tracking=t1");

        // Filter that rejects everything: no Cookie header at all.
        assert!(jar
            .cookie_header_for(&url("http://forum.example/post"), |_| false)
            .is_none());
    }

    #[test]
    fn cross_site_requests_see_no_candidates() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://forum.example/"), &SetCookie::new("sid", "s1"));
        assert!(jar.candidates_for(&url("http://evil.example/")).is_empty());
        // …but a request *to* forum.example triggered by evil.example still has the
        // cookie in scope — that is exactly the CSRF problem ESCUDO's `use` check fixes.
        assert_eq!(
            jar.candidates_for(&url("http://forum.example/post")).len(),
            1
        );
    }

    #[test]
    fn foreign_domain_attribute_is_rejected_at_store_time() {
        let mut jar = CookieJar::new();
        // RFC 6265 §5.3 step 6: attacker.example cannot plant a cookie for
        // forum.example.
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("forum.example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty(), "foreign-domain cookie must be ignored");
        assert!(jar.candidates_for(&url("http://forum.example/")).is_empty());

        // A Domain covering the setting host (parent domain) is legitimate…
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some("example.com".into()),
                ..SetCookie::new("sid", "ok")
            },
        );
        assert_eq!(jar.len(), 1);
        assert_eq!(
            jar.candidates_for(&url("http://shop.example.com/")).len(),
            1
        );

        // …but a *sibling* or unrelated domain is not.
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some("shop.example.com".into()),
                ..SetCookie::new("x", "1")
            },
        );
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn single_label_domain_cannot_scope_over_a_whole_tld() {
        let mut jar = CookieJar::new();
        // attacker.example suffix-matches `example`, but a single-label Domain is a
        // registrable suffix here (no public-suffix list) — rejected, or the cookie
        // would reach forum.example, blog.example, every *.example site.
        jar.store(
            &url("http://attacker.example/"),
            &SetCookie {
                domain: Some("example".into()),
                ..SetCookie::new("sid", "evil")
            },
        );
        assert!(jar.is_empty());
        assert!(jar.candidates_for(&url("http://forum.example/")).is_empty());

        // A single-label *host* may still name itself (intranet/localhost style).
        jar.store(
            &url("http://intranet/"),
            &SetCookie {
                domain: Some("intranet".into()),
                ..SetCookie::new("sid", "ok")
            },
        );
        assert_eq!(jar.candidates_for(&url("http://intranet/")).len(), 1);
    }

    #[test]
    fn programmatic_directives_are_normalized_at_store_time() {
        let mut jar = CookieJar::new();
        // A raw leading-dot Domain built in code (bypassing the parser) is
        // normalized, not silently dropped.
        jar.store(
            &url("http://www.example.com/"),
            &SetCookie {
                domain: Some(".example.com".into()),
                ..SetCookie::new("sid", "s1")
            },
        );
        assert_eq!(
            jar.candidates_for(&url("http://shop.example.com/")).len(),
            1
        );

        // A raw empty Domain means "no attribute": stored host-only, not rejected.
        jar.store(
            &url("http://forum.example/"),
            &SetCookie {
                domain: Some(String::new()),
                ..SetCookie::new("sid", "s2")
            },
        );
        let stored = jar.get("forum.example", "sid").expect("stored host-only");
        assert!(stored.host_only);
        assert_eq!(jar.candidates_for(&url("http://a.forum.example/")).len(), 0);
    }

    #[test]
    fn candidates_follow_rfc_6265_attach_order() {
        let mut jar = CookieJar::new();
        // Stored shortest-path first; §5.4 orders longest path first.
        jar.store(&url("http://x.example/"), &SetCookie::new("a", "1"));
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("b", "2").with_path("/forum/admin"),
        );
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("c", "3").with_path("/forum"),
        );
        // Same path length as `c` but created later: creation order breaks the tie.
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("d", "4").with_path("/forum"),
        );
        let header = jar
            .cookie_header_for(&url("http://x.example/forum/admin/tool.php"), |_| true)
            .unwrap();
        assert_eq!(header, "b=2; c=3; d=4; a=1");

        // Replacing `c` keeps its creation position (RFC 6265 §5.3 step 11.3).
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("c", "9").with_path("/forum"),
        );
        let header = jar
            .cookie_header_for(&url("http://x.example/forum/admin/tool.php"), |_| true)
            .unwrap();
        assert_eq!(header, "b=2; c=9; d=4; a=1");
    }

    #[test]
    fn default_path_scopes_cookies_to_the_setting_directory() {
        let mut jar = CookieJar::new();
        // The acceptance-criterion regression: set from `/forum/login.php` with no
        // `Path` attribute — stored under `/forum`, invisible to `/blog/…`.
        jar.store(
            &url("http://app.example/forum/login.php"),
            &SetCookie::new("sid", "s1"),
        );
        assert_eq!(jar.get("app.example", "sid").unwrap().path, "/forum");
        assert_eq!(
            jar.candidates_for(&url("http://app.example/forum/viewtopic.php"))
                .len(),
            1
        );
        assert!(jar
            .candidates_for(&url("http://app.example/blog/index.php"))
            .is_empty());
        assert!(jar.candidates_for(&url("http://app.example/")).is_empty());
    }

    #[test]
    fn duplicate_names_under_different_paths_are_deterministic() {
        let mut jar = CookieJar::new();
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("sid", "root").with_path("/"),
        );
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("sid", "forum").with_path("/forum"),
        );
        jar.store(
            &url("http://x.example/"),
            &SetCookie::new("sid", "admin").with_path("/forum/admin"),
        );
        assert_eq!(jar.len(), 3);

        // `get` returns the longest-path cookie, mirroring §5.4.
        assert_eq!(jar.get("x.example", "sid").unwrap().value, "admin");
        // Path-aware lookups are exact.
        assert_eq!(
            jar.get_with_path("x.example", "sid", "/forum")
                .unwrap()
                .value,
            "forum"
        );
        assert_eq!(
            jar.get_with_path("x.example", "sid", "/").unwrap().value,
            "root"
        );
        assert!(jar.get_with_path("x.example", "sid", "/blog").is_none());

        // `remove` deletes exactly the §5.4 winner, longest path first…
        assert!(jar.remove("x.example", "sid"));
        assert_eq!(jar.get("x.example", "sid").unwrap().value, "forum");
        // …and the path-aware form deletes an exact scope.
        assert!(jar.remove_with_path("x.example", "sid", "/"));
        assert!(!jar.remove_with_path("x.example", "sid", "/"));
        assert_eq!(jar.get("x.example", "sid").unwrap().value, "forum");
        assert!(jar.remove("x.example", "sid"));
        assert!(jar.is_empty());
    }

    #[test]
    fn expired_cookies_stop_matching_and_are_dropped_on_store() {
        let mut jar = CookieJar::new();
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("dead", "1").with_max_age(-1),
        );
        // An already-expired directive stores nothing.
        assert!(jar.is_empty());

        jar.store(&url("http://a.example/"), &SetCookie::new("live", "1"));
        // Simulate a cookie whose deadline has passed (store-time `now` is opaque,
        // so backdate the deadline directly).
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("stale", "1").with_max_age(3600),
        );
        jar.cookies
            .iter_mut()
            .find(|c| c.name == "stale")
            .unwrap()
            .expires_at = Some(std::time::SystemTime::UNIX_EPOCH);

        // Read paths filter the expired cookie…
        assert!(jar.get("a.example", "stale").is_none());
        assert!(jar.get_with_path("a.example", "stale", "/").is_none());
        let names: Vec<&str> = jar
            .candidates_for(&url("http://a.example/"))
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["live"]);
        assert_eq!(jar.len(), 2, "expired cookie still resident before a store");

        // …and the next store physically drops it.
        jar.store(&url("http://b.example/"), &SetCookie::new("other", "1"));
        assert_eq!(jar.len(), 2);
        assert!(jar.iter().all(|c| c.name != "stale"));
    }

    #[test]
    fn remove_ignores_expired_ghosts() {
        let mut jar = CookieJar::new();
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("sid", "live").with_path("/"),
        );
        // A longer-path cookie would win the §5.4 ordering — but it is expired.
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("sid", "ghost")
                .with_path("/forum/admin")
                .with_max_age(3600),
        );
        jar.cookies
            .iter_mut()
            .find(|c| c.value == "ghost")
            .unwrap()
            .expires_at = Some(std::time::SystemTime::UNIX_EPOCH);
        // `get` and `remove` agree: both resolve to the live cookie, so a caller
        // can never delete a ghost while the cookie it just read survives.
        assert_eq!(jar.get("a.example", "sid").unwrap().value, "live");
        assert!(jar.remove("a.example", "sid"));
        assert!(jar.get("a.example", "sid").is_none());
    }

    #[test]
    fn max_age_zero_deletes_the_matching_cookie() {
        let mut jar = CookieJar::new();
        jar.store(&url("http://a.example/"), &SetCookie::new("sid", "live"));
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("sid", "other").with_path("/app"),
        );
        assert_eq!(jar.len(), 2);
        // RFC 6265 §5.2.2 deletion idiom: Max-Age=0 removes exactly the matching
        // (name, host, path) cookie.
        jar.store(
            &url("http://a.example/"),
            &SetCookie::new("sid", "").with_max_age(0),
        );
        assert!(jar.get_with_path("a.example", "sid", "/").is_none());
        assert_eq!(jar.get("a.example", "sid").unwrap().value, "other");
    }

    #[test]
    fn remove_and_empty() {
        let mut jar = CookieJar::new();
        assert!(jar.is_empty());
        jar.store(&url("http://a.example/"), &SetCookie::new("x", "1"));
        assert!(jar.remove("a.example", "x"));
        assert!(!jar.remove("a.example", "x"));
        assert!(jar.is_empty());
    }
}
