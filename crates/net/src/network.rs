//! The in-memory network: a registry of servers keyed by origin, plus a request log.
//!
//! The log records every dispatched request together with the names of the cookies the
//! browser attached; the defense-effectiveness experiments (§6.4) read it to determine
//! whether a forged cross-site request carried the victim's session cookie.
//!
//! [`Network`] is the single-owner convenience handle: a thin wrapper over the
//! `Arc`-shareable [`SharedNetwork`](crate::SharedNetwork) fabric, which holds the
//! actual per-origin handlers, the lock-striped sequence-ordered log and the
//! simulated latencies. Single-session tests keep the old ergonomics; concurrent
//! deployments clone the fabric handle ([`Network::fabric`]) and share servers
//! across sessions.

use std::fmt;
use std::sync::Arc;

use escudo_core::Origin;

use crate::error::NetError;
use crate::message::{Method, Request, Response};
use crate::shared_network::SharedNetwork;
use crate::url::Url;

/// A server-side request handler registered with the [`Network`].
///
/// The in-memory applications (`escudo-apps`) implement this to stand in for the
/// PHP applications the paper modified. Handlers must be `Send`: they live behind
/// a per-origin mutex on the shared fabric and may be driven from any session
/// thread (the pipelined subresource loader fans fetches out across workers).
pub trait Server {
    /// Handles one request and produces a response.
    fn handle(&mut self, request: &Request) -> Response;
}

impl<F> Server for F
where
    F: FnMut(&Request) -> Response,
{
    fn handle(&mut self, request: &Request) -> Response {
        self(request)
    }
}

/// A log entry recorded for every dispatched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// The request method.
    pub method: Method,
    /// The full request URL.
    pub url: Url,
    /// Names of the cookies the browser attached to the request.
    pub cookie_names: Vec<String>,
    /// The response status that was returned.
    pub status: u16,
}

impl fmt::Display for LoggedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [cookies: {}] -> {}",
            self.method,
            self.url,
            if self.cookie_names.is_empty() {
                "none".to_string()
            } else {
                self.cookie_names.join(", ")
            },
            self.status
        )
    }
}

/// The single-owner handle over a (possibly shared) network fabric.
#[derive(Default)]
pub struct Network {
    fabric: Arc<SharedNetwork>,
}

impl Network {
    /// Creates a network over a fresh private fabric.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Creates a handle over an existing (possibly shared) fabric — this is how
    /// several concurrent sessions talk to the same servers and write one
    /// sequence-ordered request log.
    #[must_use]
    pub fn with_fabric(fabric: Arc<SharedNetwork>) -> Self {
        Network { fabric }
    }

    /// The underlying fabric (clone the `Arc` to share it with another session).
    #[must_use]
    pub fn fabric(&self) -> &Arc<SharedNetwork> {
        &self.fabric
    }

    /// Registers a server for an origin given as a URL string (the path is ignored).
    ///
    /// # Panics
    ///
    /// Panics if `origin_url` cannot be parsed — registration happens at setup time
    /// with literal URLs, so a parse failure is a programming error.
    pub fn register<S: Server + Send + 'static>(&mut self, origin_url: &str, server: S) {
        self.fabric.register(origin_url, server);
    }

    /// Registers a server for an already-parsed origin.
    pub fn register_origin<S: Server + Send + 'static>(&mut self, origin: Origin, server: S) {
        self.fabric.register_origin(origin, server);
    }

    /// `true` when a server is registered for the origin of `url`.
    #[must_use]
    pub fn knows(&self, url: &Url) -> bool {
        self.fabric.knows(url)
    }

    /// Dispatches a request to the server registered for its origin, logging it.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HostUnreachable`] when no server is registered for the
    /// request's origin.
    pub fn dispatch(&self, request: Request) -> Result<Response, NetError> {
        self.fabric.dispatch(request)
    }

    /// The request log in global sequence order, oldest first. (Owned snapshot:
    /// the fabric's log is striped across locks, so entries cannot be borrowed.)
    #[must_use]
    pub fn log(&self) -> Vec<LoggedRequest> {
        self.fabric.log()
    }

    /// Clears the request log (e.g. between experiment trials).
    pub fn clear_log(&self) {
        self.fabric.clear_log();
    }

    /// Convenience query: the log entries for requests sent to `host`.
    #[must_use]
    pub fn requests_to(&self, host: &str) -> Vec<LoggedRequest> {
        self.fabric.requests_to(host)
    }

    /// Counts the log entries for requests sent to `host` without materializing
    /// them — the common count-only query of the defense experiments.
    #[must_use]
    pub fn count_requests_to(&self, host: &str) -> usize {
        self.fabric.count_requests_to(host)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("fabric", &self.fabric)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;

    fn echo_server(req: &Request) -> Response {
        Response::ok_text(format!("{} {}", req.method, req.url.path()))
    }

    #[test]
    fn dispatch_routes_by_origin() {
        let mut net = Network::new();
        net.register("http://a.example", echo_server);
        net.register("http://b.example", |_req: &Request| {
            Response::error(StatusCode::FORBIDDEN, "nope")
        });

        let ra = net
            .dispatch(Request::get("http://a.example/x").unwrap())
            .unwrap();
        assert_eq!(ra.body, "GET /x");
        let rb = net
            .dispatch(Request::get("http://b.example/y").unwrap())
            .unwrap();
        assert_eq!(rb.status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn unknown_hosts_are_unreachable() {
        let net = Network::new();
        let err = net
            .dispatch(Request::get("http://nowhere.example/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HostUnreachable(_)));
    }

    #[test]
    fn different_port_is_a_different_origin() {
        let mut net = Network::new();
        net.register("http://a.example:8080", echo_server);
        assert!(net
            .dispatch(Request::get("http://a.example/").unwrap())
            .is_err());
        assert!(net
            .dispatch(Request::get("http://a.example:8080/").unwrap())
            .is_ok());
    }

    #[test]
    fn the_log_records_cookies_and_status() {
        let mut net = Network::new();
        net.register("http://forum.example", echo_server);
        let req = Request::get("http://forum.example/post")
            .unwrap()
            .with_header("Cookie", "sid=abc; data=1");
        net.dispatch(req).unwrap();
        net.dispatch(Request::get("http://forum.example/plain").unwrap())
            .unwrap();

        assert_eq!(net.log().len(), 2);
        assert_eq!(net.log()[0].cookie_names, vec!["sid", "data"]);
        assert!(net.log()[1].cookie_names.is_empty());
        assert_eq!(net.requests_to("forum.example").len(), 2);
        assert_eq!(net.count_requests_to("forum.example"), 2);
        assert!(net.requests_to("other.example").is_empty());
        assert_eq!(net.count_requests_to("other.example"), 0);

        net.clear_log();
        assert!(net.log().is_empty());
    }

    #[test]
    fn closures_can_be_servers_and_knows_reports_registration() {
        let mut net = Network::new();
        let mut hits = 0usize;
        net.register("http://count.example", move |_req: &Request| {
            hits += 1;
            Response::ok_text(hits.to_string())
        });
        assert!(net.knows(&Url::parse("http://count.example/a").unwrap()));
        assert!(!net.knows(&Url::parse("http://other.example/").unwrap()));
        let first = net
            .dispatch(Request::get("http://count.example/").unwrap())
            .unwrap();
        let second = net
            .dispatch(Request::get("http://count.example/").unwrap())
            .unwrap();
        assert_eq!(first.body, "1");
        assert_eq!(second.body, "2");
    }

    #[test]
    fn sessions_sharing_a_fabric_see_each_others_servers_and_log() {
        let fabric = Arc::new(SharedNetwork::new());
        let mut a = Network::with_fabric(Arc::clone(&fabric));
        a.register("http://app.example", echo_server);
        // A second handle over the same fabric reaches the same server…
        let b = Network::with_fabric(Arc::clone(&fabric));
        assert!(b.knows(&Url::parse("http://app.example/").unwrap()));
        b.dispatch(Request::get("http://app.example/from-b").unwrap())
            .unwrap();
        // …and both handles read one shared, sequence-ordered log.
        assert_eq!(a.log().len(), 1);
        assert_eq!(a.log()[0].url.path(), "/from-b");
        assert!(Arc::ptr_eq(a.fabric(), b.fabric()));
    }

    #[test]
    fn logged_request_display_is_readable() {
        let entry = LoggedRequest {
            method: Method::Get,
            url: Url::parse("http://forum.example/post?x=1").unwrap(),
            cookie_names: vec!["sid".into()],
            status: 200,
        };
        let s = entry.to_string();
        assert!(s.contains("GET"));
        assert!(s.contains("sid"));
        assert!(s.contains("200"));
    }
}
