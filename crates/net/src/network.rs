//! The in-memory network: a registry of servers keyed by origin, plus a request log.
//!
//! The log records every dispatched request together with the names of the cookies the
//! browser attached; the defense-effectiveness experiments (§6.4) read it to determine
//! whether a forged cross-site request carried the victim's session cookie.

use std::collections::HashMap;
use std::fmt;

use escudo_core::Origin;

use crate::error::NetError;
use crate::message::{Method, Request, Response};
use crate::url::Url;

/// A server-side request handler registered with the [`Network`].
///
/// The in-memory applications (`escudo-apps`) implement this to stand in for the
/// PHP applications the paper modified.
pub trait Server {
    /// Handles one request and produces a response.
    fn handle(&mut self, request: &Request) -> Response;
}

impl<F> Server for F
where
    F: FnMut(&Request) -> Response,
{
    fn handle(&mut self, request: &Request) -> Response {
        self(request)
    }
}

/// A log entry recorded for every dispatched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// The request method.
    pub method: Method,
    /// The full request URL.
    pub url: Url,
    /// Names of the cookies the browser attached to the request.
    pub cookie_names: Vec<String>,
    /// The response status that was returned.
    pub status: u16,
}

impl fmt::Display for LoggedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [cookies: {}] -> {}",
            self.method,
            self.url,
            if self.cookie_names.is_empty() {
                "none".to_string()
            } else {
                self.cookie_names.join(", ")
            },
            self.status
        )
    }
}

/// The in-memory network: maps origins to servers and logs traffic.
#[derive(Default)]
pub struct Network {
    servers: HashMap<Origin, Box<dyn Server>>,
    log: Vec<LoggedRequest>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Registers a server for an origin given as a URL string (the path is ignored).
    ///
    /// # Panics
    ///
    /// Panics if `origin_url` cannot be parsed — registration happens at setup time
    /// with literal URLs, so a parse failure is a programming error.
    pub fn register<S: Server + 'static>(&mut self, origin_url: &str, server: S) {
        let origin = Origin::parse_url(origin_url)
            .expect("network registration requires a valid origin URL");
        self.servers.insert(origin, Box::new(server));
    }

    /// Registers a server for an already-parsed origin.
    pub fn register_origin<S: Server + 'static>(&mut self, origin: Origin, server: S) {
        self.servers.insert(origin, Box::new(server));
    }

    /// `true` when a server is registered for the origin of `url`.
    #[must_use]
    pub fn knows(&self, url: &Url) -> bool {
        self.servers.contains_key(&url.origin())
    }

    /// Dispatches a request to the server registered for its origin, logging it.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HostUnreachable`] when no server is registered for the
    /// request's origin.
    pub fn dispatch(&mut self, request: Request) -> Result<Response, NetError> {
        let origin = request.url.origin();
        let server = self
            .servers
            .get_mut(&origin)
            .ok_or_else(|| NetError::HostUnreachable(origin.to_string()))?;
        let response = server.handle(&request);
        self.log.push(LoggedRequest {
            method: request.method,
            url: request.url.clone(),
            cookie_names: request.cookie_names(),
            status: response.status.0,
        });
        Ok(response)
    }

    /// The request log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[LoggedRequest] {
        &self.log
    }

    /// Clears the request log (e.g. between experiment trials).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Convenience query: the log entries for requests sent to `host`.
    #[must_use]
    pub fn requests_to(&self, host: &str) -> Vec<&LoggedRequest> {
        self.log
            .iter()
            .filter(|entry| entry.url.host().eq_ignore_ascii_case(host))
            .collect()
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("origins", &self.servers.keys().collect::<Vec<_>>())
            .field("logged_requests", &self.log.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;

    fn echo_server(req: &Request) -> Response {
        Response::ok_text(format!("{} {}", req.method, req.url.path()))
    }

    #[test]
    fn dispatch_routes_by_origin() {
        let mut net = Network::new();
        net.register("http://a.example", echo_server);
        net.register("http://b.example", |_req: &Request| {
            Response::error(StatusCode::FORBIDDEN, "nope")
        });

        let ra = net
            .dispatch(Request::get("http://a.example/x").unwrap())
            .unwrap();
        assert_eq!(ra.body, "GET /x");
        let rb = net
            .dispatch(Request::get("http://b.example/y").unwrap())
            .unwrap();
        assert_eq!(rb.status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn unknown_hosts_are_unreachable() {
        let mut net = Network::new();
        let err = net
            .dispatch(Request::get("http://nowhere.example/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HostUnreachable(_)));
    }

    #[test]
    fn different_port_is_a_different_origin() {
        let mut net = Network::new();
        net.register("http://a.example:8080", echo_server);
        assert!(net
            .dispatch(Request::get("http://a.example/").unwrap())
            .is_err());
        assert!(net
            .dispatch(Request::get("http://a.example:8080/").unwrap())
            .is_ok());
    }

    #[test]
    fn the_log_records_cookies_and_status() {
        let mut net = Network::new();
        net.register("http://forum.example", echo_server);
        let req = Request::get("http://forum.example/post")
            .unwrap()
            .with_header("Cookie", "sid=abc; data=1");
        net.dispatch(req).unwrap();
        net.dispatch(Request::get("http://forum.example/plain").unwrap())
            .unwrap();

        assert_eq!(net.log().len(), 2);
        assert_eq!(net.log()[0].cookie_names, vec!["sid", "data"]);
        assert!(net.log()[1].cookie_names.is_empty());
        assert_eq!(net.requests_to("forum.example").len(), 2);
        assert!(net.requests_to("other.example").is_empty());

        net.clear_log();
        assert!(net.log().is_empty());
    }

    #[test]
    fn closures_can_be_servers_and_knows_reports_registration() {
        let mut net = Network::new();
        let mut hits = 0usize;
        net.register("http://count.example", move |_req: &Request| {
            hits += 1;
            Response::ok_text(hits.to_string())
        });
        assert!(net.knows(&Url::parse("http://count.example/a").unwrap()));
        assert!(!net.knows(&Url::parse("http://other.example/").unwrap()));
        let first = net
            .dispatch(Request::get("http://count.example/").unwrap())
            .unwrap();
        let second = net
            .dispatch(Request::get("http://count.example/").unwrap())
            .unwrap();
        assert_eq!(first.body, "1");
        assert_eq!(second.body, "2");
    }

    #[test]
    fn logged_request_display_is_readable() {
        let entry = LoggedRequest {
            method: Method::Get,
            url: Url::parse("http://forum.example/post?x=1").unwrap(),
            cookie_names: vec!["sid".into()],
            status: 200,
        };
        let s = entry.to_string();
        assert!(s.contains("GET"));
        assert!(s.contains("sid"));
        assert!(s.contains("200"));
    }
}
