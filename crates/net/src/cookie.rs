//! Cookies and `Set-Cookie` parsing.

use std::fmt;
use std::time::{Duration, SystemTime};

use crate::error::NetError;
use crate::url::Url;

/// A `Set-Cookie` directive as sent by a server.
///
/// The attributes the reproduction needs are modelled: `Domain`, `Path`, `Secure`,
/// `HttpOnly`, and the expiry pair `Max-Age` / `Expires` (RFC 6265 §5.2.1–§5.2.2) —
/// a long-lived server deployment must stop matching cookies whose lifetime has
/// elapsed, and `Max-Age=0` is the standard deletion idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Optional `Domain` attribute.
    pub domain: Option<String>,
    /// Optional `Path` attribute. `None` (or a value not starting with `/`) means the
    /// stored cookie takes the RFC 6265 §5.1.4 *default-path* of the setting URL —
    /// the directory prefix of the setting request's path, **not** `/`.
    pub path: Option<String>,
    /// Optional `Max-Age` attribute in seconds (may be zero or negative — both mean
    /// "expire immediately", i.e. delete). Takes precedence over `expires`
    /// (RFC 6265 §5.3 step 3).
    pub max_age: Option<i64>,
    /// Optional `Expires` attribute, parsed to an absolute instant. A malformed
    /// date is ignored entirely (the attribute is treated as absent).
    pub expires: Option<SystemTime>,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl SetCookie {
    /// Creates a cookie with no attributes: host-only, scoped to the setting URL's
    /// default-path (for the root-level pages the paper's applications serve, that
    /// is `/`).
    #[must_use]
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            name: name.into(),
            value: value.into(),
            domain: None,
            path: None,
            max_age: None,
            expires: None,
            secure: false,
            http_only: false,
        }
    }

    /// Sets the `Path` attribute (builder style).
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Sets the `Max-Age` attribute (builder style). Zero or negative means
    /// "expire immediately" — the RFC 6265 deletion idiom.
    #[must_use]
    pub fn with_max_age(mut self, seconds: i64) -> Self {
        self.max_age = Some(seconds);
        self
    }

    /// Sets the `HttpOnly` attribute (builder style).
    #[must_use]
    pub fn http_only(mut self) -> Self {
        self.http_only = true;
        self
    }

    /// Parses a `Set-Cookie` header value.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCookie`] when the leading `name=value` pair is
    /// missing or the name is empty.
    pub fn parse(header_value: &str) -> Result<Self, NetError> {
        let mut parts = header_value.split(';');
        let first = parts
            .next()
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let (name, value) = first
            .split_once('=')
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(NetError::InvalidCookie(header_value.to_string()));
        }
        let mut cookie = SetCookie::new(name, value.trim());
        for attr in parts {
            let attr = attr.trim();
            let (key, val) = attr.split_once('=').unwrap_or((attr, ""));
            match key.to_ascii_lowercase().as_str() {
                // RFC 6265 §5.2.3: an empty `Domain` value (including a bare `.`)
                // must be ignored entirely — the cookie stays host-only. Mapping it
                // to `Some("")` would store a cookie whose host matches no request.
                // Domains are case-insensitive; normalize once here.
                "domain" => {
                    let domain = val.trim().trim_start_matches('.');
                    if !domain.is_empty() {
                        cookie.domain = Some(domain.to_ascii_lowercase());
                    }
                }
                // An empty `Path=` means "no attribute" (the stored cookie takes the
                // setting URL's default-path, exactly like a missing attribute).
                "path" => {
                    let path = val.trim();
                    cookie.path = (!path.is_empty()).then(|| path.to_string());
                }
                // RFC 6265 §5.2.2: the value must be digits with an optional leading
                // `-`; anything else means "ignore the attribute entirely".
                "max-age" => {
                    let val = val.trim();
                    let digits = val.strip_prefix('-').unwrap_or(val);
                    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                        if let Ok(seconds) = val.parse::<i64>() {
                            cookie.max_age = Some(seconds);
                        }
                    }
                }
                // §5.2.1: an unparseable date means "ignore the attribute".
                "expires" => cookie.expires = parse_cookie_date(val),
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                _ => {}
            }
        }
        Ok(cookie)
    }

    /// The effective `Domain` attribute after RFC 6265 §5.2.3 normalization: leading
    /// dots and surrounding whitespace are ignored, and an empty value means "no
    /// attribute at all" (host-only cookie). [`SetCookie::parse`] normalizes while
    /// parsing; this also covers programmatically-built directives whose public
    /// `domain` field was set raw — the jar's store path and
    /// [`Cookie::from_set_cookie`] both go through here so they can never disagree.
    #[must_use]
    pub fn normalized_domain(&self) -> Option<&str> {
        let domain = self.domain.as_deref()?.trim().trim_start_matches('.');
        (!domain.is_empty()).then_some(domain)
    }

    /// The path the stored cookie will carry when set from a request whose URL path
    /// is `setting_path`: the `Path` attribute when present and absolute, otherwise
    /// the RFC 6265 §5.1.4 default-path of the setting URL.
    #[must_use]
    pub fn effective_path(&self, setting_path: &str) -> String {
        match self.path.as_deref() {
            Some(path) if path.starts_with('/') => path.to_string(),
            _ => default_path(setting_path),
        }
    }

    /// The absolute instant this directive's cookie stops matching, evaluated
    /// against `now` (the store time): `Max-Age` relative to `now` when present
    /// (RFC 6265 §5.3 step 3 gives it precedence), otherwise the `Expires`
    /// instant, otherwise `None` — a session cookie that never expires.
    ///
    /// A zero or negative `Max-Age` yields the earliest representable time
    /// (§5.2.2), so the resulting cookie is already expired — the deletion idiom.
    /// A `Max-Age` too large to represent saturates to "no expiry".
    #[must_use]
    pub fn expiry_deadline(&self, now: SystemTime) -> Option<SystemTime> {
        if let Some(seconds) = self.max_age {
            if seconds <= 0 {
                return Some(SystemTime::UNIX_EPOCH);
            }
            return now.checked_add(Duration::from_secs(seconds as u64));
        }
        self.expires
    }

    /// Serializes the directive as a `Set-Cookie` header value. (`Expires` is not
    /// re-serialized — programmatic directives use `Max-Age`, which round-trips.)
    #[must_use]
    pub fn to_header_value(&self) -> String {
        let mut out = format!("{}={}", self.name, self.value);
        if let Some(domain) = &self.domain {
            out.push_str("; Domain=");
            out.push_str(domain);
        }
        if let Some(path) = &self.path {
            out.push_str("; Path=");
            out.push_str(path);
        }
        if let Some(seconds) = self.max_age {
            out.push_str("; Max-Age=");
            out.push_str(&seconds.to_string());
        }
        if self.secure {
            out.push_str("; Secure");
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        out
    }
}

impl fmt::Display for SetCookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

/// A cookie as stored in the jar: the `Set-Cookie` data plus the host that set it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// The host the cookie belongs to (from the setting response's URL, or the
    /// `Domain` attribute).
    pub host: String,
    /// Whether the cookie is host-only (no `Domain` attribute was given, so it is
    /// scoped to exactly the setting host — RFC 6265 §5.4 — rather than to the
    /// host and its subdomains).
    pub host_only: bool,
    /// The scheme of the setting response (used with `Secure`).
    pub scheme: String,
    /// The port of the setting origin. Classic cookies ignore the port; it is kept for
    /// bookkeeping and for deriving the cookie's ESCUDO origin.
    pub port: u16,
    /// `Path` scope.
    pub path: String,
    /// The absolute instant the cookie expires (`None` = session cookie). Derived
    /// at store time from `Max-Age`/`Expires` via [`SetCookie::expiry_deadline`];
    /// the jars lazily drop cookies whose deadline has passed.
    pub expires_at: Option<SystemTime>,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl Cookie {
    /// Builds a stored cookie from a `Set-Cookie` directive and the URL of the
    /// response that delivered it. The setting URL supplies the origin *and* the
    /// RFC 6265 §5.1.4 default-path a directive without an absolute `Path` falls
    /// back to (set from `/forum/login.php` → scope `/forum`, not `/`).
    #[must_use]
    pub fn from_set_cookie(directive: &SetCookie, url: &Url) -> Self {
        let domain = directive.normalized_domain();
        Cookie {
            name: directive.name.clone(),
            value: directive.value.clone(),
            // One allocation: borrow whichever source applies, lowercase into the
            // owned field. (The parser already lowercases `Domain`, but a
            // programmatically-built directive may not be normalized.)
            host: domain.unwrap_or(url.host()).to_ascii_lowercase(),
            host_only: domain.is_none(),
            scheme: url.scheme().to_ascii_lowercase(),
            port: url.port(),
            path: directive.effective_path(url.path()),
            expires_at: directive.expiry_deadline(SystemTime::now()),
            secure: directive.secure,
            http_only: directive.http_only,
        }
    }

    /// Whether the cookie's expiry deadline has passed at `now`. A session cookie
    /// (no deadline) never expires.
    #[must_use]
    pub fn expired(&self, now: SystemTime) -> bool {
        self.expires_at.is_some_and(|deadline| deadline <= now)
    }

    /// Whether this cookie is in scope for a request to `host` + `path` over `scheme`.
    /// (This is *scope matching only* — whether the cookie is actually attached is a
    /// separate, policy-mediated decision.)
    #[must_use]
    pub fn in_scope(&self, scheme: &str, host: &str, path: &str) -> bool {
        if self.secure && !scheme.eq_ignore_ascii_case("https") {
            return false;
        }
        // RFC 6265 §5.4: a host-only cookie matches exactly the host that set it;
        // only a cookie with an explicit `Domain` extends to subdomains.
        if self.host_only {
            if !host.eq_ignore_ascii_case(&self.host) {
                return false;
            }
        } else if !domain_matches(&self.host, host) {
            return false;
        }
        path_matches(&self.path, path)
    }

    /// The cookie's ESCUDO origin (the origin of the application that created it).
    #[must_use]
    pub fn origin(&self) -> escudo_core::Origin {
        escudo_core::Origin::new(&self.scheme, &self.host, self.port)
    }

    /// The `name=value` pair used in the `Cookie` request header.
    #[must_use]
    pub fn to_cookie_pair(&self) -> String {
        format!("{}={}", self.name, self.value)
    }
}

/// RFC-6265-style domain matching: exact match, or the request host is a subdomain of
/// the cookie domain. Also used by the jar's store path to enforce §5.3 step 6 (a
/// `Domain` attribute must cover the setting host, or the cookie is rejected).
///
/// Allocation-free: the stored cookie host is already lowercased
/// ([`Cookie::from_set_cookie`] normalizes at store time), and the request host is
/// compared case-insensitively in place — this runs once per cookie per request.
pub(crate) fn domain_matches(cookie_host: &str, request_host: &str) -> bool {
    if cookie_host.is_empty() {
        return false;
    }
    if request_host.eq_ignore_ascii_case(cookie_host) {
        return true;
    }
    // Dot-suffix match: `request_host` ends with `.{cookie_host}`.
    match request_host.len().checked_sub(cookie_host.len() + 1) {
        Some(dot) => {
            request_host.as_bytes()[dot] == b'.'
                && request_host[dot + 1..].eq_ignore_ascii_case(cookie_host)
        }
        None => false,
    }
}

/// The RFC 6265 §5.1.4 default-path of a request URL: the directory prefix of the
/// URL's path (`/forum/login.php` → `/forum`, `/forum/` → `/forum`), or `/` when the
/// path is root-level, relative, or empty. This is the scope a `Set-Cookie` without
/// an absolute `Path` attribute takes — **not** the whole host.
#[must_use]
pub fn default_path(uri_path: &str) -> String {
    if !uri_path.starts_with('/') {
        return "/".to_string();
    }
    match uri_path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(last_slash) => uri_path[..last_slash].to_string(),
    }
}

/// Parses a cookie `Expires` date per the RFC 6265 §5.1.1 algorithm: the value is
/// split into tokens on non-token delimiters, and the first token matching each of
/// *time* (`hh:mm:ss`), *day-of-month*, *month* (3-letter name) and *year* wins,
/// in that priority order — so `Wed, 21 Oct 2015 07:28:00 GMT`,
/// `21-Oct-15 07:28:00` and other legacy spellings all parse. Returns `None`
/// (attribute ignored) when a component is missing or out of range. Dates before
/// the epoch clamp to the earliest representable time — already expired.
#[must_use]
pub fn parse_cookie_date(value: &str) -> Option<SystemTime> {
    let mut time: Option<(u64, u64, u64)> = None;
    let mut day: Option<u64> = None;
    let mut month: Option<u64> = None;
    let mut year: Option<i64> = None;
    for token in value.split(|c: char| !(c.is_ascii_alphanumeric() || c == ':')) {
        if token.is_empty() {
            continue;
        }
        if time.is_none() && token.contains(':') {
            let mut parts = token.splitn(3, ':');
            let fields: Option<Vec<u64>> = parts
                .by_ref()
                .map(|f| {
                    ((1..=2).contains(&f.len()) && f.bytes().all(|b| b.is_ascii_digit()))
                        .then(|| f.parse().ok())
                        .flatten()
                })
                .collect();
            if let Some(fields) = fields {
                if fields.len() == 3 {
                    time = Some((fields[0], fields[1], fields[2]));
                }
            }
            continue;
        }
        if token.bytes().all(|b| b.is_ascii_digit()) {
            if day.is_none() && (1..=2).contains(&token.len()) {
                day = token.parse().ok();
                continue;
            }
            if year.is_none() && (token.len() == 2 || token.len() == 4) {
                if let Ok(parsed) = token.parse::<i64>() {
                    // §5.1.1 steps 3–4: two-digit years 70–99 are 19xx, 0–69 are 20xx.
                    year = Some(match parsed {
                        70..=99 => parsed + 1900,
                        0..=69 if token.len() == 2 => parsed + 2000,
                        other => other,
                    });
                }
            }
            continue;
        }
        if month.is_none() && token.len() >= 3 {
            let prefix = token[..3].to_ascii_lowercase();
            month = [
                "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
            ]
            .iter()
            .position(|m| *m == prefix)
            .map(|i| i as u64 + 1);
        }
    }
    let ((hour, minute, second), day, month, year) = (time?, day?, month?, year?);
    if !(1..=31).contains(&day) || year < 1601 || hour > 23 || minute > 59 || second > 59 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    let seconds = days * 86_400 + (hour * 3600 + minute * 60 + second) as i64;
    if seconds < 0 {
        return Some(SystemTime::UNIX_EPOCH);
    }
    SystemTime::UNIX_EPOCH.checked_add(Duration::from_secs(seconds as u64))
}

/// Days since 1970-01-01 for a proleptic Gregorian civil date (Howard Hinnant's
/// `days_from_civil` algorithm). `month` is 1-based.
fn days_from_civil(year: i64, month: u64, day: u64) -> i64 {
    let year = if month <= 2 { year - 1 } else { year };
    let era = if year >= 0 { year } else { year - 399 } / 400;
    let year_of_era = year - era * 400;
    let month_prime = (month + 9) % 12;
    let day_of_year = (153 * month_prime + 2) / 5 + day - 1;
    let day_of_era = year_of_era * 365 + year_of_era / 4 - year_of_era / 100 + day_of_year as i64;
    era * 146_097 + day_of_era - 719_468
}

/// RFC-6265-style path matching.
fn path_matches(cookie_path: &str, request_path: &str) -> bool {
    if cookie_path == "/" || cookie_path == request_path {
        return true;
    }
    if let Some(rest) = request_path.strip_prefix(cookie_path) {
        return cookie_path.ends_with('/') || rest.starts_with('/');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn parse_simple_set_cookie() {
        let c = SetCookie::parse("phpbb2mysql_sid=abc123; Path=/; HttpOnly").unwrap();
        assert_eq!(c.name, "phpbb2mysql_sid");
        assert_eq!(c.value, "abc123");
        assert_eq!(c.path.as_deref(), Some("/"));
        assert!(c.http_only);
        assert!(!c.secure);
    }

    #[test]
    fn parse_handles_domain_and_secure() {
        let c = SetCookie::parse("sid=1; Domain=.example.com; Secure; Path=/app").unwrap();
        assert_eq!(c.domain.as_deref(), Some("example.com"));
        assert!(c.secure);
        assert_eq!(c.path.as_deref(), Some("/app"));
    }

    #[test]
    fn default_path_is_the_directory_prefix() {
        // RFC 6265 §5.1.4 table: uri-path → default-path.
        for (uri_path, expected) in [
            ("/forum/login.php", "/forum"),
            ("/forum/", "/forum"),
            ("/forum/admin/index.php", "/forum/admin"),
            ("/login.php", "/"),
            ("/", "/"),
            ("", "/"),
            ("relative", "/"),
        ] {
            assert_eq!(
                default_path(uri_path),
                expected,
                "for uri-path {uri_path:?}"
            );
        }
    }

    #[test]
    fn missing_or_relative_path_attribute_takes_the_default_path() {
        // Regression: a `Set-Cookie` without `Path` used to be stored with `/`,
        // matching every request to the host. RFC 6265 §5.1.4 scopes it to the
        // setting URL's directory instead.
        let setting_urls = [
            ("http://forum.example/forum/login.php", "/forum"),
            ("http://forum.example/login.php", "/"),
            ("http://forum.example/", "/"),
            ("http://forum.example/forum/admin/tool.php", "/forum/admin"),
        ];
        let path_attrs: [(Option<&str>, Option<&str>); 5] = [
            // (Path attribute, explicit stored path — None means "use default-path")
            (None, None),
            (Some(""), None),
            (Some("noslash"), None), // §5.1.4: not absolute → default-path
            (Some("/explicit"), Some("/explicit")),
            (Some("/"), Some("/")),
        ];
        for (setting, default) in setting_urls {
            for (attr, explicit) in path_attrs {
                let mut directive = SetCookie::new("sid", "1");
                directive.path = attr.map(str::to_string);
                let stored = Cookie::from_set_cookie(&directive, &url(setting));
                let expected = explicit.unwrap_or(default);
                assert_eq!(
                    stored.path, expected,
                    "set from {setting:?} with Path attr {attr:?}"
                );
            }
        }

        // The acceptance-criterion case: a cookie set from `/forum/login.php` must
        // no longer be in scope for `/blog/…` requests.
        let stored = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1"),
            &url("http://forum.example/forum/login.php"),
        );
        assert_eq!(stored.path, "/forum");
        assert!(stored.in_scope("http", "forum.example", "/forum/viewtopic.php"));
        assert!(stored.in_scope("http", "forum.example", "/forum"));
        assert!(!stored.in_scope("http", "forum.example", "/blog/index.php"));
        assert!(!stored.in_scope("http", "forum.example", "/forumextra"));
        assert!(!stored.in_scope("http", "forum.example", "/"));
    }

    #[test]
    fn empty_domain_attribute_is_ignored() {
        // Regression: `Domain=` used to parse as `Some("")`, storing a cookie whose
        // host was `""` — which matched no request host at all. RFC 6265 §5.2.3 says
        // an empty value means "ignore the attribute" (host-only cookie).
        for header in [
            "sid=1; Domain=",
            "sid=1; Domain=.",
            "sid=1; Domain=..",
            "sid=1; Domain=   ",
        ] {
            let parsed = SetCookie::parse(header).unwrap();
            assert_eq!(parsed.domain, None, "for header {header:?}");
            let stored = Cookie::from_set_cookie(&parsed, &url("http://forum.example/"));
            assert_eq!(stored.host, "forum.example");
            assert!(stored.host_only, "for header {header:?}");
            assert!(
                stored.in_scope("http", "forum.example", "/"),
                "a host-only cookie must match its own host (header {header:?})"
            );
            assert!(!stored.in_scope("http", "evil.example", "/"));
            // RFC 6265 §5.4: host-only means *exactly* that host — not subdomains.
            assert!(
                !stored.in_scope("http", "a.forum.example", "/"),
                "a host-only cookie must not leak to subdomains (header {header:?})"
            );
        }
    }

    #[test]
    fn mixed_case_domains_match_case_insensitively() {
        let parsed = SetCookie::parse("sid=1; Domain=.ExAmPlE.CoM").unwrap();
        assert_eq!(parsed.domain.as_deref(), Some("example.com"));
        let stored = Cookie::from_set_cookie(&parsed, &url("http://WWW.Example.COM/"));
        assert_eq!(stored.host, "example.com");
        assert!(stored.in_scope("http", "www.example.com", "/"));
        assert!(stored.in_scope("http", "Shop.EXAMPLE.com", "/"));
        assert!(!stored.in_scope("http", "example.org", "/"));

        // Host-only cookie set from a mixed-case origin host.
        let host_only =
            Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("HTTP://Forum.Example/"));
        assert_eq!(host_only.host, "forum.example");
        assert!(host_only.in_scope("http", "FORUM.example", "/"));
    }

    #[test]
    fn domain_matching_is_exact_or_dot_suffix() {
        assert!(domain_matches("example.com", "example.com"));
        assert!(domain_matches("example.com", "a.example.com"));
        assert!(domain_matches("example.com", "a.b.example.com"));
        assert!(domain_matches("example.com", "A.EXAMPLE.COM"));
        // Not a label boundary: `notexample.com` is not a subdomain.
        assert!(!domain_matches("example.com", "notexample.com"));
        assert!(!domain_matches("example.com", "example.com.evil"));
        assert!(!domain_matches("example.com", "com"));
        assert!(!domain_matches("example.com", ""));
        // A defensively-rejected empty cookie host matches nothing.
        assert!(!domain_matches("", "example.com"));
        assert!(!domain_matches("", ""));
    }

    #[test]
    fn max_age_parses_per_rfc_6265() {
        // Valid: optional leading `-`, digits only.
        for (header, expected) in [
            ("sid=1; Max-Age=3600", Some(3600)),
            ("sid=1; Max-Age=0", Some(0)),
            ("sid=1; Max-Age=-1", Some(-1)),
            ("sid=1; max-age= 60 ", Some(60)),
            // Invalid values are ignored entirely (§5.2.2).
            ("sid=1; Max-Age=notanum", None),
            ("sid=1; Max-Age=1.5", None),
            ("sid=1; Max-Age=+5", None),
            ("sid=1; Max-Age=", None),
            ("sid=1; Max-Age=-", None),
        ] {
            assert_eq!(
                SetCookie::parse(header).unwrap().max_age,
                expected,
                "for header {header:?}"
            );
        }
    }

    #[test]
    fn expires_dates_parse_in_legacy_spellings() {
        // All three spell the same instant: 2015-10-21 07:28:00 UTC.
        let expected = SystemTime::UNIX_EPOCH + Duration::from_secs(1_445_412_480);
        for date in [
            "Wed, 21 Oct 2015 07:28:00 GMT",
            "21-Oct-15 07:28:00",
            "Oct 21 2015 7:28:00",
        ] {
            assert_eq!(parse_cookie_date(date), Some(expected), "for date {date:?}");
            let header = format!("sid=1; Expires={date}");
            assert_eq!(SetCookie::parse(&header).unwrap().expires, Some(expected));
        }
        // The epoch itself and a pre-epoch date both clamp to "already expired".
        assert_eq!(
            parse_cookie_date("Thu, 01 Jan 1970 00:00:00 GMT"),
            Some(SystemTime::UNIX_EPOCH)
        );
        assert_eq!(
            parse_cookie_date("Tue, 31 Dec 1968 23:59:59 GMT"),
            Some(SystemTime::UNIX_EPOCH)
        );
        // Malformed dates are ignored (the attribute is treated as absent).
        for bad in [
            "not a date",
            "32 Oct 2015 07:28:00",
            "21 Oct 1515 07:28:00",
            "21 Oct 2015 24:00:00",
            "21 Oct 2015",
            "Oct 07:28:00",
        ] {
            assert_eq!(parse_cookie_date(bad), None, "for date {bad:?}");
        }
    }

    #[test]
    fn expiry_deadline_prefers_max_age_and_handles_deletion() {
        let now = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000);
        let later = SystemTime::UNIX_EPOCH + Duration::from_secs(2_000_000);

        // Session cookie: no deadline.
        assert_eq!(SetCookie::new("a", "1").expiry_deadline(now), None);
        // Max-Age is relative to the store time.
        assert_eq!(
            SetCookie::new("a", "1")
                .with_max_age(60)
                .expiry_deadline(now),
            Some(now + Duration::from_secs(60))
        );
        // Max-Age=0 (and negative) → earliest representable time: deletion.
        for seconds in [0, -5] {
            assert_eq!(
                SetCookie::new("a", "1")
                    .with_max_age(seconds)
                    .expiry_deadline(now),
                Some(SystemTime::UNIX_EPOCH)
            );
        }
        // Max-Age wins over Expires (§5.3 step 3).
        let mut both = SetCookie::new("a", "1").with_max_age(60);
        both.expires = Some(later);
        assert_eq!(
            both.expiry_deadline(now),
            Some(now + Duration::from_secs(60))
        );
        let mut only_expires = SetCookie::new("a", "1");
        only_expires.expires = Some(later);
        assert_eq!(only_expires.expiry_deadline(now), Some(later));
    }

    #[test]
    fn stored_cookies_report_expiry() {
        let now = SystemTime::now();
        let live = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1").with_max_age(3600),
            &url("http://a.example/"),
        );
        assert!(!live.expired(now));
        assert!(live.expired(now + Duration::from_secs(4000)));
        let session =
            Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("http://a.example/"));
        assert!(!session.expired(now + Duration::from_secs(1 << 40)));
        let dead = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1").with_max_age(0),
            &url("http://a.example/"),
        );
        assert!(dead.expired(now));
    }

    #[test]
    fn max_age_round_trips_through_the_header_value() {
        let original = SetCookie::new("sid", "1").with_max_age(600).with_path("/a");
        let parsed = SetCookie::parse(&original.to_header_value()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_nameless_cookies() {
        assert!(SetCookie::parse("=value").is_err());
        assert!(SetCookie::parse("no-equals-sign").is_err());
        assert!(SetCookie::parse("").is_err());
    }

    #[test]
    fn header_value_roundtrip() {
        let original = SetCookie::new("data", "x1").with_path("/forum").http_only();
        let parsed = SetCookie::parse(&original.to_header_value()).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.value, original.value);
        assert_eq!(parsed.path, original.path);
        assert_eq!(parsed.http_only, original.http_only);
    }

    #[test]
    fn scope_matching_domain() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("http://forum.example/"));
        assert!(c.host_only);
        assert!(c.in_scope("http", "forum.example", "/"));
        assert!(!c.in_scope("http", "evil.example", "/"));
        assert!(!c.in_scope("http", "notforum.example", "/"));
        assert!(!c.in_scope("http", "sub.forum.example", "/"));

        let wide = Cookie::from_set_cookie(
            &SetCookie {
                domain: Some("example.com".into()),
                ..SetCookie::new("sid", "1")
            },
            &url("http://www.example.com/"),
        );
        assert!(!wide.host_only);
        assert!(wide.in_scope("http", "www.example.com", "/"));
        assert!(wide.in_scope("http", "shop.example.com", "/"));
        assert!(!wide.in_scope("http", "example.org", "/"));
    }

    #[test]
    fn scope_matching_path_and_secure() {
        let c = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1").with_path("/forum"),
            &url("http://x.example/"),
        );
        assert!(c.in_scope("http", "x.example", "/forum"));
        assert!(c.in_scope("http", "x.example", "/forum/view"));
        assert!(!c.in_scope("http", "x.example", "/forumother"));
        assert!(!c.in_scope("http", "x.example", "/"));

        let secure = Cookie::from_set_cookie(
            &SetCookie {
                secure: true,
                ..SetCookie::new("sid", "1")
            },
            &url("https://x.example/"),
        );
        assert!(secure.in_scope("https", "x.example", "/"));
        assert!(!secure.in_scope("http", "x.example", "/"));
    }

    #[test]
    fn cookie_origin_reflects_the_setting_site() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("http://Forum.Example/"));
        assert_eq!(
            c.origin(),
            escudo_core::Origin::new("http", "forum.example", 80)
        );
        assert_eq!(c.to_cookie_pair(), "sid=1");
    }

    #[test]
    fn set_cookie_parser_never_panics() {
        let adversarial = [
            "",
            "=",
            "=v",
            "n=",
            ";;;",
            "name",
            "name=value; Path",
            "name=value; Path=",
            "a=b; Secure; HttpOnly; Domain=; Path=/",
            "  spaced = out  ",
            "a=b=c=d",
            "n=v; Unknown=Attr",
            "🦀=🦀",
            "n=v;Secure;secure;SECURE",
            "x=y; Max-Age=notanum",
        ];
        for s in adversarial {
            let _ = SetCookie::parse(s);
        }
    }

    #[test]
    fn roundtrip_for_simple_cookies() {
        let names = ["sid", "_tok", "A", "phpbb2mysql_data"];
        let values = ["", "abc123", "ZZZZZZZZZZZZZZZZ"];
        let paths = [None, Some("/"), Some("/app"), Some("/a/b")];
        for name in names {
            for value in values {
                for path in paths {
                    for secure in [false, true] {
                        for http_only in [false, true] {
                            let cookie = SetCookie {
                                name: name.to_string(),
                                value: value.to_string(),
                                domain: None,
                                path: path.map(str::to_string),
                                max_age: None,
                                expires: None,
                                secure,
                                http_only,
                            };
                            let parsed = SetCookie::parse(&cookie.to_header_value()).unwrap();
                            assert_eq!(parsed, cookie);
                        }
                    }
                }
            }
        }
    }
}
