//! Cookies and `Set-Cookie` parsing.

use std::fmt;

use crate::error::NetError;
use crate::url::Url;

/// A `Set-Cookie` directive as sent by a server.
///
/// Only the attributes the reproduction needs are modelled: `Domain`, `Path`,
/// `Secure` and `HttpOnly`. (Expiry is irrelevant for in-memory sessions.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Optional `Domain` attribute.
    pub domain: Option<String>,
    /// Optional `Path` attribute. `None` (or a value not starting with `/`) means the
    /// stored cookie takes the RFC 6265 §5.1.4 *default-path* of the setting URL —
    /// the directory prefix of the setting request's path, **not** `/`.
    pub path: Option<String>,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl SetCookie {
    /// Creates a cookie with no attributes: host-only, scoped to the setting URL's
    /// default-path (for the root-level pages the paper's applications serve, that
    /// is `/`).
    #[must_use]
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            name: name.into(),
            value: value.into(),
            domain: None,
            path: None,
            secure: false,
            http_only: false,
        }
    }

    /// Sets the `Path` attribute (builder style).
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Sets the `HttpOnly` attribute (builder style).
    #[must_use]
    pub fn http_only(mut self) -> Self {
        self.http_only = true;
        self
    }

    /// Parses a `Set-Cookie` header value.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCookie`] when the leading `name=value` pair is
    /// missing or the name is empty.
    pub fn parse(header_value: &str) -> Result<Self, NetError> {
        let mut parts = header_value.split(';');
        let first = parts
            .next()
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let (name, value) = first
            .split_once('=')
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(NetError::InvalidCookie(header_value.to_string()));
        }
        let mut cookie = SetCookie::new(name, value.trim());
        for attr in parts {
            let attr = attr.trim();
            let (key, val) = attr.split_once('=').unwrap_or((attr, ""));
            match key.to_ascii_lowercase().as_str() {
                // RFC 6265 §5.2.3: an empty `Domain` value (including a bare `.`)
                // must be ignored entirely — the cookie stays host-only. Mapping it
                // to `Some("")` would store a cookie whose host matches no request.
                // Domains are case-insensitive; normalize once here.
                "domain" => {
                    let domain = val.trim().trim_start_matches('.');
                    if !domain.is_empty() {
                        cookie.domain = Some(domain.to_ascii_lowercase());
                    }
                }
                // An empty `Path=` means "no attribute" (the stored cookie takes the
                // setting URL's default-path, exactly like a missing attribute).
                "path" => {
                    let path = val.trim();
                    cookie.path = (!path.is_empty()).then(|| path.to_string());
                }
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                _ => {}
            }
        }
        Ok(cookie)
    }

    /// The effective `Domain` attribute after RFC 6265 §5.2.3 normalization: leading
    /// dots and surrounding whitespace are ignored, and an empty value means "no
    /// attribute at all" (host-only cookie). [`SetCookie::parse`] normalizes while
    /// parsing; this also covers programmatically-built directives whose public
    /// `domain` field was set raw — the jar's store path and
    /// [`Cookie::from_set_cookie`] both go through here so they can never disagree.
    #[must_use]
    pub fn normalized_domain(&self) -> Option<&str> {
        let domain = self.domain.as_deref()?.trim().trim_start_matches('.');
        (!domain.is_empty()).then_some(domain)
    }

    /// The path the stored cookie will carry when set from a request whose URL path
    /// is `setting_path`: the `Path` attribute when present and absolute, otherwise
    /// the RFC 6265 §5.1.4 default-path of the setting URL.
    #[must_use]
    pub fn effective_path(&self, setting_path: &str) -> String {
        match self.path.as_deref() {
            Some(path) if path.starts_with('/') => path.to_string(),
            _ => default_path(setting_path),
        }
    }

    /// Serializes the directive as a `Set-Cookie` header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        let mut out = format!("{}={}", self.name, self.value);
        if let Some(domain) = &self.domain {
            out.push_str("; Domain=");
            out.push_str(domain);
        }
        if let Some(path) = &self.path {
            out.push_str("; Path=");
            out.push_str(path);
        }
        if self.secure {
            out.push_str("; Secure");
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        out
    }
}

impl fmt::Display for SetCookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

/// A cookie as stored in the jar: the `Set-Cookie` data plus the host that set it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// The host the cookie belongs to (from the setting response's URL, or the
    /// `Domain` attribute).
    pub host: String,
    /// Whether the cookie is host-only (no `Domain` attribute was given, so it is
    /// scoped to exactly the setting host — RFC 6265 §5.4 — rather than to the
    /// host and its subdomains).
    pub host_only: bool,
    /// The scheme of the setting response (used with `Secure`).
    pub scheme: String,
    /// The port of the setting origin. Classic cookies ignore the port; it is kept for
    /// bookkeeping and for deriving the cookie's ESCUDO origin.
    pub port: u16,
    /// `Path` scope.
    pub path: String,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl Cookie {
    /// Builds a stored cookie from a `Set-Cookie` directive and the URL of the
    /// response that delivered it. The setting URL supplies the origin *and* the
    /// RFC 6265 §5.1.4 default-path a directive without an absolute `Path` falls
    /// back to (set from `/forum/login.php` → scope `/forum`, not `/`).
    #[must_use]
    pub fn from_set_cookie(directive: &SetCookie, url: &Url) -> Self {
        let domain = directive.normalized_domain();
        Cookie {
            name: directive.name.clone(),
            value: directive.value.clone(),
            // One allocation: borrow whichever source applies, lowercase into the
            // owned field. (The parser already lowercases `Domain`, but a
            // programmatically-built directive may not be normalized.)
            host: domain.unwrap_or(url.host()).to_ascii_lowercase(),
            host_only: domain.is_none(),
            scheme: url.scheme().to_ascii_lowercase(),
            port: url.port(),
            path: directive.effective_path(url.path()),
            secure: directive.secure,
            http_only: directive.http_only,
        }
    }

    /// Whether this cookie is in scope for a request to `host` + `path` over `scheme`.
    /// (This is *scope matching only* — whether the cookie is actually attached is a
    /// separate, policy-mediated decision.)
    #[must_use]
    pub fn in_scope(&self, scheme: &str, host: &str, path: &str) -> bool {
        if self.secure && !scheme.eq_ignore_ascii_case("https") {
            return false;
        }
        // RFC 6265 §5.4: a host-only cookie matches exactly the host that set it;
        // only a cookie with an explicit `Domain` extends to subdomains.
        if self.host_only {
            if !host.eq_ignore_ascii_case(&self.host) {
                return false;
            }
        } else if !domain_matches(&self.host, host) {
            return false;
        }
        path_matches(&self.path, path)
    }

    /// The cookie's ESCUDO origin (the origin of the application that created it).
    #[must_use]
    pub fn origin(&self) -> escudo_core::Origin {
        escudo_core::Origin::new(&self.scheme, &self.host, self.port)
    }

    /// The `name=value` pair used in the `Cookie` request header.
    #[must_use]
    pub fn to_cookie_pair(&self) -> String {
        format!("{}={}", self.name, self.value)
    }
}

/// RFC-6265-style domain matching: exact match, or the request host is a subdomain of
/// the cookie domain. Also used by the jar's store path to enforce §5.3 step 6 (a
/// `Domain` attribute must cover the setting host, or the cookie is rejected).
///
/// Allocation-free: the stored cookie host is already lowercased
/// ([`Cookie::from_set_cookie`] normalizes at store time), and the request host is
/// compared case-insensitively in place — this runs once per cookie per request.
pub(crate) fn domain_matches(cookie_host: &str, request_host: &str) -> bool {
    if cookie_host.is_empty() {
        return false;
    }
    if request_host.eq_ignore_ascii_case(cookie_host) {
        return true;
    }
    // Dot-suffix match: `request_host` ends with `.{cookie_host}`.
    match request_host.len().checked_sub(cookie_host.len() + 1) {
        Some(dot) => {
            request_host.as_bytes()[dot] == b'.'
                && request_host[dot + 1..].eq_ignore_ascii_case(cookie_host)
        }
        None => false,
    }
}

/// The RFC 6265 §5.1.4 default-path of a request URL: the directory prefix of the
/// URL's path (`/forum/login.php` → `/forum`, `/forum/` → `/forum`), or `/` when the
/// path is root-level, relative, or empty. This is the scope a `Set-Cookie` without
/// an absolute `Path` attribute takes — **not** the whole host.
#[must_use]
pub fn default_path(uri_path: &str) -> String {
    if !uri_path.starts_with('/') {
        return "/".to_string();
    }
    match uri_path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(last_slash) => uri_path[..last_slash].to_string(),
    }
}

/// RFC-6265-style path matching.
fn path_matches(cookie_path: &str, request_path: &str) -> bool {
    if cookie_path == "/" || cookie_path == request_path {
        return true;
    }
    if let Some(rest) = request_path.strip_prefix(cookie_path) {
        return cookie_path.ends_with('/') || rest.starts_with('/');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn parse_simple_set_cookie() {
        let c = SetCookie::parse("phpbb2mysql_sid=abc123; Path=/; HttpOnly").unwrap();
        assert_eq!(c.name, "phpbb2mysql_sid");
        assert_eq!(c.value, "abc123");
        assert_eq!(c.path.as_deref(), Some("/"));
        assert!(c.http_only);
        assert!(!c.secure);
    }

    #[test]
    fn parse_handles_domain_and_secure() {
        let c = SetCookie::parse("sid=1; Domain=.example.com; Secure; Path=/app").unwrap();
        assert_eq!(c.domain.as_deref(), Some("example.com"));
        assert!(c.secure);
        assert_eq!(c.path.as_deref(), Some("/app"));
    }

    #[test]
    fn default_path_is_the_directory_prefix() {
        // RFC 6265 §5.1.4 table: uri-path → default-path.
        for (uri_path, expected) in [
            ("/forum/login.php", "/forum"),
            ("/forum/", "/forum"),
            ("/forum/admin/index.php", "/forum/admin"),
            ("/login.php", "/"),
            ("/", "/"),
            ("", "/"),
            ("relative", "/"),
        ] {
            assert_eq!(
                default_path(uri_path),
                expected,
                "for uri-path {uri_path:?}"
            );
        }
    }

    #[test]
    fn missing_or_relative_path_attribute_takes_the_default_path() {
        // Regression: a `Set-Cookie` without `Path` used to be stored with `/`,
        // matching every request to the host. RFC 6265 §5.1.4 scopes it to the
        // setting URL's directory instead.
        let setting_urls = [
            ("http://forum.example/forum/login.php", "/forum"),
            ("http://forum.example/login.php", "/"),
            ("http://forum.example/", "/"),
            ("http://forum.example/forum/admin/tool.php", "/forum/admin"),
        ];
        let path_attrs: [(Option<&str>, Option<&str>); 5] = [
            // (Path attribute, explicit stored path — None means "use default-path")
            (None, None),
            (Some(""), None),
            (Some("noslash"), None), // §5.1.4: not absolute → default-path
            (Some("/explicit"), Some("/explicit")),
            (Some("/"), Some("/")),
        ];
        for (setting, default) in setting_urls {
            for (attr, explicit) in path_attrs {
                let mut directive = SetCookie::new("sid", "1");
                directive.path = attr.map(str::to_string);
                let stored = Cookie::from_set_cookie(&directive, &url(setting));
                let expected = explicit.unwrap_or(default);
                assert_eq!(
                    stored.path, expected,
                    "set from {setting:?} with Path attr {attr:?}"
                );
            }
        }

        // The acceptance-criterion case: a cookie set from `/forum/login.php` must
        // no longer be in scope for `/blog/…` requests.
        let stored = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1"),
            &url("http://forum.example/forum/login.php"),
        );
        assert_eq!(stored.path, "/forum");
        assert!(stored.in_scope("http", "forum.example", "/forum/viewtopic.php"));
        assert!(stored.in_scope("http", "forum.example", "/forum"));
        assert!(!stored.in_scope("http", "forum.example", "/blog/index.php"));
        assert!(!stored.in_scope("http", "forum.example", "/forumextra"));
        assert!(!stored.in_scope("http", "forum.example", "/"));
    }

    #[test]
    fn empty_domain_attribute_is_ignored() {
        // Regression: `Domain=` used to parse as `Some("")`, storing a cookie whose
        // host was `""` — which matched no request host at all. RFC 6265 §5.2.3 says
        // an empty value means "ignore the attribute" (host-only cookie).
        for header in [
            "sid=1; Domain=",
            "sid=1; Domain=.",
            "sid=1; Domain=..",
            "sid=1; Domain=   ",
        ] {
            let parsed = SetCookie::parse(header).unwrap();
            assert_eq!(parsed.domain, None, "for header {header:?}");
            let stored = Cookie::from_set_cookie(&parsed, &url("http://forum.example/"));
            assert_eq!(stored.host, "forum.example");
            assert!(stored.host_only, "for header {header:?}");
            assert!(
                stored.in_scope("http", "forum.example", "/"),
                "a host-only cookie must match its own host (header {header:?})"
            );
            assert!(!stored.in_scope("http", "evil.example", "/"));
            // RFC 6265 §5.4: host-only means *exactly* that host — not subdomains.
            assert!(
                !stored.in_scope("http", "a.forum.example", "/"),
                "a host-only cookie must not leak to subdomains (header {header:?})"
            );
        }
    }

    #[test]
    fn mixed_case_domains_match_case_insensitively() {
        let parsed = SetCookie::parse("sid=1; Domain=.ExAmPlE.CoM").unwrap();
        assert_eq!(parsed.domain.as_deref(), Some("example.com"));
        let stored = Cookie::from_set_cookie(&parsed, &url("http://WWW.Example.COM/"));
        assert_eq!(stored.host, "example.com");
        assert!(stored.in_scope("http", "www.example.com", "/"));
        assert!(stored.in_scope("http", "Shop.EXAMPLE.com", "/"));
        assert!(!stored.in_scope("http", "example.org", "/"));

        // Host-only cookie set from a mixed-case origin host.
        let host_only =
            Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("HTTP://Forum.Example/"));
        assert_eq!(host_only.host, "forum.example");
        assert!(host_only.in_scope("http", "FORUM.example", "/"));
    }

    #[test]
    fn domain_matching_is_exact_or_dot_suffix() {
        assert!(domain_matches("example.com", "example.com"));
        assert!(domain_matches("example.com", "a.example.com"));
        assert!(domain_matches("example.com", "a.b.example.com"));
        assert!(domain_matches("example.com", "A.EXAMPLE.COM"));
        // Not a label boundary: `notexample.com` is not a subdomain.
        assert!(!domain_matches("example.com", "notexample.com"));
        assert!(!domain_matches("example.com", "example.com.evil"));
        assert!(!domain_matches("example.com", "com"));
        assert!(!domain_matches("example.com", ""));
        // A defensively-rejected empty cookie host matches nothing.
        assert!(!domain_matches("", "example.com"));
        assert!(!domain_matches("", ""));
    }

    #[test]
    fn parse_rejects_nameless_cookies() {
        assert!(SetCookie::parse("=value").is_err());
        assert!(SetCookie::parse("no-equals-sign").is_err());
        assert!(SetCookie::parse("").is_err());
    }

    #[test]
    fn header_value_roundtrip() {
        let original = SetCookie::new("data", "x1").with_path("/forum").http_only();
        let parsed = SetCookie::parse(&original.to_header_value()).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.value, original.value);
        assert_eq!(parsed.path, original.path);
        assert_eq!(parsed.http_only, original.http_only);
    }

    #[test]
    fn scope_matching_domain() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("http://forum.example/"));
        assert!(c.host_only);
        assert!(c.in_scope("http", "forum.example", "/"));
        assert!(!c.in_scope("http", "evil.example", "/"));
        assert!(!c.in_scope("http", "notforum.example", "/"));
        assert!(!c.in_scope("http", "sub.forum.example", "/"));

        let wide = Cookie::from_set_cookie(
            &SetCookie {
                domain: Some("example.com".into()),
                ..SetCookie::new("sid", "1")
            },
            &url("http://www.example.com/"),
        );
        assert!(!wide.host_only);
        assert!(wide.in_scope("http", "www.example.com", "/"));
        assert!(wide.in_scope("http", "shop.example.com", "/"));
        assert!(!wide.in_scope("http", "example.org", "/"));
    }

    #[test]
    fn scope_matching_path_and_secure() {
        let c = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1").with_path("/forum"),
            &url("http://x.example/"),
        );
        assert!(c.in_scope("http", "x.example", "/forum"));
        assert!(c.in_scope("http", "x.example", "/forum/view"));
        assert!(!c.in_scope("http", "x.example", "/forumother"));
        assert!(!c.in_scope("http", "x.example", "/"));

        let secure = Cookie::from_set_cookie(
            &SetCookie {
                secure: true,
                ..SetCookie::new("sid", "1")
            },
            &url("https://x.example/"),
        );
        assert!(secure.in_scope("https", "x.example", "/"));
        assert!(!secure.in_scope("http", "x.example", "/"));
    }

    #[test]
    fn cookie_origin_reflects_the_setting_site() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), &url("http://Forum.Example/"));
        assert_eq!(
            c.origin(),
            escudo_core::Origin::new("http", "forum.example", 80)
        );
        assert_eq!(c.to_cookie_pair(), "sid=1");
    }

    #[test]
    fn set_cookie_parser_never_panics() {
        let adversarial = [
            "",
            "=",
            "=v",
            "n=",
            ";;;",
            "name",
            "name=value; Path",
            "name=value; Path=",
            "a=b; Secure; HttpOnly; Domain=; Path=/",
            "  spaced = out  ",
            "a=b=c=d",
            "n=v; Unknown=Attr",
            "🦀=🦀",
            "n=v;Secure;secure;SECURE",
            "x=y; Max-Age=notanum",
        ];
        for s in adversarial {
            let _ = SetCookie::parse(s);
        }
    }

    #[test]
    fn roundtrip_for_simple_cookies() {
        let names = ["sid", "_tok", "A", "phpbb2mysql_data"];
        let values = ["", "abc123", "ZZZZZZZZZZZZZZZZ"];
        let paths = [None, Some("/"), Some("/app"), Some("/a/b")];
        for name in names {
            for value in values {
                for path in paths {
                    for secure in [false, true] {
                        for http_only in [false, true] {
                            let cookie = SetCookie {
                                name: name.to_string(),
                                value: value.to_string(),
                                domain: None,
                                path: path.map(str::to_string),
                                secure,
                                http_only,
                            };
                            let parsed = SetCookie::parse(&cookie.to_header_value()).unwrap();
                            assert_eq!(parsed, cookie);
                        }
                    }
                }
            }
        }
    }
}
