//! Cookies and `Set-Cookie` parsing.

use std::fmt;

use crate::error::NetError;

/// A `Set-Cookie` directive as sent by a server.
///
/// Only the attributes the reproduction needs are modelled: `Domain`, `Path`,
/// `Secure` and `HttpOnly`. (Expiry is irrelevant for in-memory sessions.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Optional `Domain` attribute.
    pub domain: Option<String>,
    /// `Path` attribute (defaults to `/`).
    pub path: String,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl SetCookie {
    /// Creates a host-wide (`Path=/`) cookie.
    #[must_use]
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            name: name.into(),
            value: value.into(),
            domain: None,
            path: "/".to_string(),
            secure: false,
            http_only: false,
        }
    }

    /// Sets the `Path` attribute (builder style).
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = path.into();
        self
    }

    /// Sets the `HttpOnly` attribute (builder style).
    #[must_use]
    pub fn http_only(mut self) -> Self {
        self.http_only = true;
        self
    }

    /// Parses a `Set-Cookie` header value.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCookie`] when the leading `name=value` pair is
    /// missing or the name is empty.
    pub fn parse(header_value: &str) -> Result<Self, NetError> {
        let mut parts = header_value.split(';');
        let first = parts
            .next()
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let (name, value) = first
            .split_once('=')
            .ok_or_else(|| NetError::InvalidCookie(header_value.to_string()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(NetError::InvalidCookie(header_value.to_string()));
        }
        let mut cookie = SetCookie::new(name, value.trim());
        for attr in parts {
            let attr = attr.trim();
            let (key, val) = attr.split_once('=').unwrap_or((attr, ""));
            match key.to_ascii_lowercase().as_str() {
                "domain" => cookie.domain = Some(val.trim().trim_start_matches('.').to_string()),
                "path" => cookie.path = val.trim().to_string(),
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                _ => {}
            }
        }
        if cookie.path.is_empty() {
            cookie.path = "/".to_string();
        }
        Ok(cookie)
    }

    /// Serializes the directive as a `Set-Cookie` header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        let mut out = format!("{}={}", self.name, self.value);
        if let Some(domain) = &self.domain {
            out.push_str("; Domain=");
            out.push_str(domain);
        }
        out.push_str("; Path=");
        out.push_str(&self.path);
        if self.secure {
            out.push_str("; Secure");
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        out
    }
}

impl fmt::Display for SetCookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_header_value())
    }
}

/// A cookie as stored in the jar: the `Set-Cookie` data plus the host that set it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// The host the cookie belongs to (from the setting response's URL, or the
    /// `Domain` attribute).
    pub host: String,
    /// The scheme of the setting response (used with `Secure`).
    pub scheme: String,
    /// The port of the setting origin. Classic cookies ignore the port; it is kept for
    /// bookkeeping and for deriving the cookie's ESCUDO origin.
    pub port: u16,
    /// `Path` scope.
    pub path: String,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
}

impl Cookie {
    /// Builds a stored cookie from a `Set-Cookie` directive and the origin that sent it.
    #[must_use]
    pub fn from_set_cookie(directive: &SetCookie, scheme: &str, host: &str, port: u16) -> Self {
        Cookie {
            name: directive.name.clone(),
            value: directive.value.clone(),
            host: directive
                .domain
                .clone()
                .unwrap_or_else(|| host.to_string())
                .to_ascii_lowercase(),
            scheme: scheme.to_ascii_lowercase(),
            port,
            path: directive.path.clone(),
            secure: directive.secure,
            http_only: directive.http_only,
        }
    }

    /// Whether this cookie is in scope for a request to `host` + `path` over `scheme`.
    /// (This is *scope matching only* — whether the cookie is actually attached is a
    /// separate, policy-mediated decision.)
    #[must_use]
    pub fn in_scope(&self, scheme: &str, host: &str, path: &str) -> bool {
        if self.secure && !scheme.eq_ignore_ascii_case("https") {
            return false;
        }
        if !domain_matches(&self.host, host) {
            return false;
        }
        path_matches(&self.path, path)
    }

    /// The cookie's ESCUDO origin (the origin of the application that created it).
    #[must_use]
    pub fn origin(&self) -> escudo_core::Origin {
        escudo_core::Origin::new(&self.scheme, &self.host, self.port)
    }

    /// The `name=value` pair used in the `Cookie` request header.
    #[must_use]
    pub fn to_cookie_pair(&self) -> String {
        format!("{}={}", self.name, self.value)
    }
}

/// RFC-6265-style domain matching: exact match, or the request host is a subdomain of
/// the cookie domain.
fn domain_matches(cookie_host: &str, request_host: &str) -> bool {
    let cookie_host = cookie_host.to_ascii_lowercase();
    let request_host = request_host.to_ascii_lowercase();
    request_host == cookie_host || request_host.ends_with(&format!(".{cookie_host}"))
}

/// RFC-6265-style path matching.
fn path_matches(cookie_path: &str, request_path: &str) -> bool {
    if cookie_path == "/" || cookie_path == request_path {
        return true;
    }
    if let Some(rest) = request_path.strip_prefix(cookie_path) {
        return cookie_path.ends_with('/') || rest.starts_with('/');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_set_cookie() {
        let c = SetCookie::parse("phpbb2mysql_sid=abc123; Path=/; HttpOnly").unwrap();
        assert_eq!(c.name, "phpbb2mysql_sid");
        assert_eq!(c.value, "abc123");
        assert_eq!(c.path, "/");
        assert!(c.http_only);
        assert!(!c.secure);
    }

    #[test]
    fn parse_handles_domain_and_secure() {
        let c = SetCookie::parse("sid=1; Domain=.example.com; Secure; Path=/app").unwrap();
        assert_eq!(c.domain.as_deref(), Some("example.com"));
        assert!(c.secure);
        assert_eq!(c.path, "/app");
    }

    #[test]
    fn parse_rejects_nameless_cookies() {
        assert!(SetCookie::parse("=value").is_err());
        assert!(SetCookie::parse("no-equals-sign").is_err());
        assert!(SetCookie::parse("").is_err());
    }

    #[test]
    fn header_value_roundtrip() {
        let original = SetCookie::new("data", "x1").with_path("/forum").http_only();
        let parsed = SetCookie::parse(&original.to_header_value()).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.value, original.value);
        assert_eq!(parsed.path, original.path);
        assert_eq!(parsed.http_only, original.http_only);
    }

    #[test]
    fn scope_matching_domain() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), "http", "forum.example", 80);
        assert!(c.in_scope("http", "forum.example", "/"));
        assert!(!c.in_scope("http", "evil.example", "/"));
        assert!(!c.in_scope("http", "notforum.example", "/"));

        let wide = Cookie::from_set_cookie(
            &SetCookie {
                domain: Some("example.com".into()),
                ..SetCookie::new("sid", "1")
            },
            "http",
            "www.example.com",
            80,
        );
        assert!(wide.in_scope("http", "www.example.com", "/"));
        assert!(wide.in_scope("http", "shop.example.com", "/"));
        assert!(!wide.in_scope("http", "example.org", "/"));
    }

    #[test]
    fn scope_matching_path_and_secure() {
        let c = Cookie::from_set_cookie(
            &SetCookie::new("sid", "1").with_path("/forum"),
            "http",
            "x.example",
            80,
        );
        assert!(c.in_scope("http", "x.example", "/forum"));
        assert!(c.in_scope("http", "x.example", "/forum/view"));
        assert!(!c.in_scope("http", "x.example", "/forumother"));
        assert!(!c.in_scope("http", "x.example", "/"));

        let secure = Cookie::from_set_cookie(
            &SetCookie {
                secure: true,
                ..SetCookie::new("sid", "1")
            },
            "https",
            "x.example",
            443,
        );
        assert!(secure.in_scope("https", "x.example", "/"));
        assert!(!secure.in_scope("http", "x.example", "/"));
    }

    #[test]
    fn cookie_origin_reflects_the_setting_site() {
        let c = Cookie::from_set_cookie(&SetCookie::new("sid", "1"), "http", "Forum.Example", 80);
        assert_eq!(
            c.origin(),
            escudo_core::Origin::new("http", "forum.example", 80)
        );
        assert_eq!(c.to_cookie_pair(), "sid=1");
    }

    #[test]
    fn set_cookie_parser_never_panics() {
        let adversarial = [
            "",
            "=",
            "=v",
            "n=",
            ";;;",
            "name",
            "name=value; Path",
            "name=value; Path=",
            "a=b; Secure; HttpOnly; Domain=; Path=/",
            "  spaced = out  ",
            "a=b=c=d",
            "n=v; Unknown=Attr",
            "🦀=🦀",
            "n=v;Secure;secure;SECURE",
            "x=y; Max-Age=notanum",
        ];
        for s in adversarial {
            let _ = SetCookie::parse(s);
        }
    }

    #[test]
    fn roundtrip_for_simple_cookies() {
        let names = ["sid", "_tok", "A", "phpbb2mysql_data"];
        let values = ["", "abc123", "ZZZZZZZZZZZZZZZZ"];
        let paths = ["/", "/app", "/a/b"];
        for name in names {
            for value in values {
                for path in paths {
                    for secure in [false, true] {
                        for http_only in [false, true] {
                            let cookie = SetCookie {
                                name: name.to_string(),
                                value: value.to_string(),
                                domain: None,
                                path: path.to_string(),
                                secure,
                                http_only,
                            };
                            let parsed = SetCookie::parse(&cookie.to_header_value()).unwrap();
                            assert_eq!(parsed, cookie);
                        }
                    }
                }
            }
        }
    }
}
