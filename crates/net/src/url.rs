//! URL parsing for the subset of syntax the reproduction needs.

use std::fmt;
use std::str::FromStr;

use escudo_core::Origin;

use crate::error::NetError;

/// A parsed absolute URL: `scheme://host[:port]/path[?query]`.
///
/// Fragments (`#…`) are parsed and discarded (they never reach the server). This is a
/// purpose-built parser, not a WHATWG implementation; it covers everything the paper's
/// applications and attacks use.
///
/// # Example
///
/// ```
/// use escudo_net::Url;
///
/// let url = Url::parse("http://forum.example/posting.php?mode=reply&t=42")?;
/// assert_eq!(url.host(), "forum.example");
/// assert_eq!(url.path(), "/posting.php");
/// assert_eq!(url.query_param("mode").as_deref(), Some("reply"));
/// assert_eq!(url.origin().port(), 80);
/// # Ok::<(), escudo_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: u16,
    path: String,
    query: String,
}

impl Url {
    /// Parses an absolute URL.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidUrl`] when the scheme/host are missing or the port is
    /// not numeric.
    pub fn parse(input: &str) -> Result<Self, NetError> {
        let input = input.trim();
        let origin =
            Origin::parse_url(input).map_err(|_| NetError::InvalidUrl(input.to_string()))?;
        let after_scheme = &input[input.find("://").map(|i| i + 3).unwrap_or(0)..];
        let path_start = after_scheme.find(['/', '?', '#']);
        let (path, query) = match path_start {
            None => ("/".to_string(), String::new()),
            Some(idx) => {
                let rest = &after_scheme[idx..];
                // Strip the fragment first.
                let rest = rest.split('#').next().unwrap_or("");
                match rest.split_once('?') {
                    Some((p, q)) => (normalize_path(p), q.to_string()),
                    None => (normalize_path(rest), String::new()),
                }
            }
        };
        Ok(Url {
            scheme: origin.scheme().to_string(),
            host: origin.host().to_string(),
            port: origin.port(),
            path,
            query,
        })
    }

    /// Builds a URL from components (used by page generators and tests).
    #[must_use]
    pub fn from_parts(scheme: &str, host: &str, port: u16, path: &str, query: &str) -> Self {
        Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            port,
            path: normalize_path(path),
            query: query.trim_start_matches('?').to_string(),
        }
    }

    /// Resolves a possibly relative reference against this URL (enough of RFC 3986 for
    /// the applications in this repo: absolute URLs, absolute paths, and relative
    /// paths without `..` handling beyond simple cases).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the resolved URL cannot be parsed.
    pub fn join(&self, reference: &str) -> Result<Url, NetError> {
        let reference = reference.trim();
        if reference.contains("://") {
            return Url::parse(reference);
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        // Strip the fragment before splitting off the query, matching `Url::parse`:
        // `viewtopic.php#p42` must not leak `#p42` into the path (fragments never
        // reach the server, and a path containing `#` breaks path-scoped cookies).
        let reference = reference.split('#').next().unwrap_or("");
        if reference.is_empty() {
            return Ok(self.clone());
        }
        let (path_ref, query) = match reference.split_once('?') {
            Some((p, q)) => (p, q.to_string()),
            None => (reference, String::new()),
        };
        let path = if path_ref.starts_with('/') {
            path_ref.to_string()
        } else {
            // Relative to the current directory.
            let base = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            format!("{base}{path_ref}")
        };
        Ok(Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            port: self.port,
            path: normalize_path(&path),
            query,
        })
    }

    /// The scheme, lower-cased.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host, lower-cased.
    #[must_use]
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port (explicit or scheme default).
    #[must_use]
    pub const fn port(&self) -> u16 {
        self.port
    }

    /// The path, always starting with `/`.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The raw query string (without the leading `?`).
    #[must_use]
    pub fn query(&self) -> &str {
        &self.query
    }

    /// Looks up a query parameter by name (first occurrence), percent-decoding `+` to a
    /// space and `%XX` escapes.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<String> {
        parse_query(&self.query)
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// All query parameters in order.
    #[must_use]
    pub fn query_params(&self) -> Vec<(String, String)> {
        parse_query(&self.query)
    }

    /// The URL's origin.
    #[must_use]
    pub fn origin(&self) -> Origin {
        Origin::new(&self.scheme, &self.host, self.port)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if self.port != escudo_core::origin::default_port(&self.scheme) {
            write!(f, ":{}", self.port)?;
        }
        write!(f, "{}", self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

fn normalize_path(path: &str) -> String {
    if path.is_empty() {
        "/".to_string()
    } else if path.starts_with('/') {
        path.to_string()
    } else {
        format!("/{path}")
    }
}

/// Parses an `application/x-www-form-urlencoded` string into key/value pairs.
#[must_use]
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (k, v) = part.split_once('=').unwrap_or((part, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// Encodes a string for use in a query string or form body.
#[must_use]
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for byte in input.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// Decodes `+` and `%XX` escapes. Invalid escapes are passed through verbatim.
#[must_use]
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let high = (bytes[i + 1] as char).to_digit(16);
                let low = (bytes[i + 2] as char).to_digit(16);
                match (high, low) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_urls() {
        let url = Url::parse("https://shop.example:8443/cart/add?item=7&qty=2#frag").unwrap();
        assert_eq!(url.scheme(), "https");
        assert_eq!(url.host(), "shop.example");
        assert_eq!(url.port(), 8443);
        assert_eq!(url.path(), "/cart/add");
        assert_eq!(url.query_param("item").as_deref(), Some("7"));
        assert_eq!(url.query_param("qty").as_deref(), Some("2"));
        assert_eq!(url.query_param("missing"), None);
    }

    #[test]
    fn bare_host_gets_root_path_and_default_port() {
        let url = Url::parse("http://example.com").unwrap();
        assert_eq!(url.path(), "/");
        assert_eq!(url.port(), 80);
        assert_eq!(url.to_string(), "http://example.com/");
    }

    #[test]
    fn display_omits_default_port_but_keeps_explicit_nonstandard_ports() {
        let url = Url::parse("http://example.com:8080/a?b=c").unwrap();
        assert_eq!(url.to_string(), "http://example.com:8080/a?b=c");
        let url = Url::parse("https://example.com:443/a").unwrap();
        assert_eq!(url.to_string(), "https://example.com/a");
    }

    #[test]
    fn join_handles_absolute_and_relative_references() {
        let base = Url::parse("http://forum.example/viewtopic.php?t=1").unwrap();
        assert_eq!(
            base.join("http://other.example/x").unwrap().host(),
            "other.example"
        );
        assert_eq!(base.join("/posting.php").unwrap().path(), "/posting.php");
        assert_eq!(base.join("style.css").unwrap().path(), "/style.css");
        assert_eq!(
            base.join("posting.php?mode=reply")
                .unwrap()
                .query_param("mode")
                .as_deref(),
            Some("reply")
        );
        assert_eq!(base.join("").unwrap(), base);
    }

    #[test]
    fn join_strips_fragments_from_relative_references() {
        // Regression: the fragment used to survive `join` and end up in the path
        // (`/viewtopic.php#p42`) or the query (`x=1#f`), reaching the server and
        // breaking path-scoped cookie matching.
        let base = Url::parse("http://forum.example/forum/index.php?f=1").unwrap();

        let joined = base.join("viewtopic.php#p42").unwrap();
        assert_eq!(joined.path(), "/forum/viewtopic.php");
        assert_eq!(joined.query(), "");

        let joined = base.join("page?x=1#f").unwrap();
        assert_eq!(joined.path(), "/forum/page");
        assert_eq!(joined.query(), "x=1");

        let joined = base.join("/posting.php?mode=reply#top").unwrap();
        assert_eq!(joined.path(), "/posting.php");
        assert_eq!(joined.query(), "mode=reply");

        // A fragment-only reference resolves to the base itself.
        assert_eq!(base.join("#p42").unwrap(), base);

        // Absolute references go through `Url::parse`, which already discards them.
        let joined = base.join("http://other.example/x?q=1#frag").unwrap();
        assert_eq!(joined.path(), "/x");
        assert_eq!(joined.query(), "q=1");

        // No joined URL ever emits a `#`.
        for reference in ["a#b", "a?c=d#b", "#b", "/a/b#c", "//h/p#f", "http://h/p#f"] {
            let joined = base.join(reference).unwrap();
            assert!(!joined.path().contains('#'), "path of join({reference:?})");
            assert!(
                !joined.query().contains('#'),
                "query of join({reference:?})"
            );
        }
    }

    #[test]
    fn origin_matches_core_origin_semantics() {
        let url = Url::parse("HTTP://Example.COM/path").unwrap();
        assert_eq!(url.origin(), Origin::new("http", "example.com", 80));
    }

    #[test]
    fn invalid_urls_are_rejected() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("").is_err());
    }

    #[test]
    fn query_decoding_handles_plus_and_percent() {
        let url = Url::parse("http://x.example/s?q=hello+world&msg=a%26b%3Dc").unwrap();
        assert_eq!(url.query_param("q").as_deref(), Some("hello world"));
        assert_eq!(url.query_param("msg").as_deref(), Some("a&b=c"));
    }

    #[test]
    fn percent_encode_decode_roundtrip_examples() {
        for s in ["hello world", "a&b=c", "<script>alert(1)</script>", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn malformed_percent_escapes_pass_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn percent_roundtrip() {
        let samples = [
            "",
            "plain",
            "with space",
            "a=b&c=d",
            "100%",
            "ümlaut+snowman ☃",
            "/path/seg",
            "tab\there",
            "newline\nhere",
            "percent%41already",
            "🦀🦀🦀",
            "quote\"and'tick",
        ];
        for s in samples {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn parser_never_panics() {
        let adversarial = [
            "",
            "http://",
            "://host",
            "http://h:99999/",
            "http://h:x/",
            "not a url at all",
            "http://h/p?q#frag",
            "http://h?",
            "http://h#",
            "a://b:1",
            "http://@h/",
            "//h/p",
            "http://h/%GG",
            "http://h/%",
            "http://h/😎",
            "    ",
            "http://h:1:2/x",
        ];
        for s in adversarial {
            let _ = Url::parse(s);
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let cases = [
            ("app.example", 80u16, "", ""),
            ("app.example", 8080, "/index.php", ""),
            ("a.b.c", 1, "/x/y/z", "k=v"),
            ("forum.example", 443, "/viewtopic.php", "t=1&p=2"),
            ("h9", u16::MAX, "/a-b_c.d", "q=1"),
        ];
        for (host, port, path, q) in cases {
            let url = Url::from_parts("http", host, port, path, q);
            let reparsed = Url::parse(&url.to_string()).unwrap();
            assert_eq!(reparsed, url);
        }
    }
}
