//! Deterministic fault injection and the resilient fetch path built on top
//! of it: retries, deadlines and per-origin circuit breakers.
//!
//! ESCUDO's promise is that enforcement is *fail-closed*: partial failure may
//! degrade availability, never protection. To test that promise the fabric
//! must be able to fail on demand — deterministically, so a chaos run replays
//! exactly. This module provides both halves:
//!
//! * **Fault plans.** [`SharedNetwork::inject_fault`] installs a per-origin
//!   [`FaultPlan`] composed of [`FaultSchedule`]s — `FailFirst(n)`,
//!   `EveryNth(k)`, `SlowBy(ns)`, `Panic`, `Timeout`. Each origin carries one
//!   atomic dispatch counter; schedule evaluation is a pure function of that
//!   counter's value, so two runs with the same plan fault the same
//!   dispatches in the same order. Faulted dispatches return
//!   [`NetError::Timeout`] (or panic, contained per-slot on the batch paths)
//!   and are **excluded from the EWMA service-time model** so injected
//!   slowness cannot poison the planner's adaptive fan-out cutover.
//! * **Fetch policy.** A [`FetchPolicy`] turns bare dispatches into a
//!   resilient loop: bounded retries with deterministic exponential backoff
//!   metered against the fabric's injectable [`Clock`] (the backoff is
//!   *virtual* — accounted, never slept — so retry and deadline counts are
//!   exactly testable under a [`ManualClock`](escudo_core::ManualClock)), a
//!   per-batch deadline budget, and a per-origin circuit breaker
//!   (Closed → Open → HalfOpen with cooldown). A retry re-sends the request
//!   **verbatim**: the original mediation plan, decided by exactly one engine
//!   generation, is reused byte-for-byte — resilience never re-mediates, and
//!   denied or throttled plans are never retried because a denial is not an
//!   error, it is the monitor working.
//!
//! The failed attempts themselves are never logged (there is no response to
//! record, matching unreachable dispatches), and a successful retry logs
//! under the request's originally reserved sequence number — so the
//! sequence-sorted log of a faulted run is oracle-identical to the fault-free
//! run's.

use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use escudo_core::{Clock, Origin};

use crate::error::NetError;
use crate::fetch_pool::dispatch_containing_panics;
use crate::message::{Request, Response};
use crate::shared_network::SharedNetwork;

/// One deterministic fault rule, evaluated against the origin's 0-based
/// dispatch index. Rules compose inside a [`FaultPlan`]; when several rules
/// fire on the same dispatch, `Panic` outranks `Timeout` and slowdowns
/// accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Time out the first `n` dispatches to the origin, then heal.
    FailFirst(u64),
    /// Time out every `k`-th dispatch (the k-th, 2k-th, …; `0` never fires).
    EveryNth(u64),
    /// Add a synthetic slowdown of this many nanoseconds to every dispatch
    /// (slept like configured latency, outside all locks, but **excluded**
    /// from the planner EWMA).
    SlowBy(u64),
    /// Panic inside every dispatch, before the origin's handler runs (so the
    /// handler mutex is never poisoned and the origin can heal when the plan
    /// is cleared). Contained per-slot on the batch paths.
    Panic,
    /// Time out every dispatch.
    Timeout,
}

/// What a dispatch does once its origin's fault plan has been consulted.
/// `Proceed` with `slow_ns == 0` is the clean case — and the only case that
/// feeds the service-time EWMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOutcome {
    /// Dispatch normally.
    Proceed,
    /// Fail this dispatch with [`NetError::Timeout`].
    Timeout,
    /// Panic inside this dispatch (contained per-slot on batch paths).
    Panic,
}

/// The evaluated verdict for one dispatch: accumulated synthetic slowdown
/// plus the most severe outcome any schedule demanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Synthetic slowdown to sleep on top of the origin's configured latency.
    pub slow_ns: u64,
    /// Whether the dispatch proceeds, times out or panics.
    pub outcome: FaultOutcome,
}

impl Default for FaultDecision {
    fn default() -> Self {
        FaultDecision {
            slow_ns: 0,
            outcome: FaultOutcome::Proceed,
        }
    }
}

impl FaultDecision {
    /// `true` when no schedule touched this dispatch — only clean dispatches
    /// feed the EWMA service-time model.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.slow_ns == 0 && self.outcome == FaultOutcome::Proceed
    }
}

/// A composition of [`FaultSchedule`]s installed on one origin. Evaluation is
/// a pure function of the origin's dispatch index, so runs replay exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedules: Vec<FaultSchedule>,
}

impl FaultPlan {
    /// An empty plan (no schedules; every dispatch proceeds cleanly).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary schedule to the plan.
    #[must_use]
    pub fn with(mut self, schedule: FaultSchedule) -> Self {
        self.schedules.push(schedule);
        self
    }

    /// Adds [`FaultSchedule::FailFirst`]`(n)`.
    #[must_use]
    pub fn fail_first(self, n: u64) -> Self {
        self.with(FaultSchedule::FailFirst(n))
    }

    /// Adds [`FaultSchedule::EveryNth`]`(k)`.
    #[must_use]
    pub fn every_nth(self, k: u64) -> Self {
        self.with(FaultSchedule::EveryNth(k))
    }

    /// Adds [`FaultSchedule::SlowBy`]`(ns)`.
    #[must_use]
    pub fn slow_by(self, ns: u64) -> Self {
        self.with(FaultSchedule::SlowBy(ns))
    }

    /// Adds [`FaultSchedule::Panic`].
    #[must_use]
    pub fn panicking(self) -> Self {
        self.with(FaultSchedule::Panic)
    }

    /// Adds [`FaultSchedule::Timeout`].
    #[must_use]
    pub fn timeout(self) -> Self {
        self.with(FaultSchedule::Timeout)
    }

    /// The composed schedules, in installation order.
    #[must_use]
    pub fn schedules(&self) -> &[FaultSchedule] {
        &self.schedules
    }

    /// Evaluates the plan against the 0-based dispatch index — a pure
    /// function, so the same (plan, index) always yields the same decision.
    #[must_use]
    pub fn decide(&self, index: u64) -> FaultDecision {
        let mut decision = FaultDecision::default();
        for schedule in &self.schedules {
            match *schedule {
                FaultSchedule::FailFirst(n) => {
                    if index < n {
                        decision.outcome = decision.outcome.max(FaultOutcome::Timeout);
                    }
                }
                FaultSchedule::EveryNth(k) => {
                    if k > 0 && (index + 1).is_multiple_of(k) {
                        decision.outcome = decision.outcome.max(FaultOutcome::Timeout);
                    }
                }
                FaultSchedule::SlowBy(ns) => {
                    decision.slow_ns = decision.slow_ns.saturating_add(ns);
                }
                FaultSchedule::Panic => {
                    decision.outcome = FaultOutcome::Panic;
                }
                FaultSchedule::Timeout => {
                    decision.outcome = decision.outcome.max(FaultOutcome::Timeout);
                }
            }
        }
        decision
    }
}

/// One origin's installed plan plus its atomic dispatch counter — the whole
/// of the fault layer's per-origin state, so replay only needs the plan.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    counter: AtomicU64,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            counter: AtomicU64::new(0),
        }
    }

    /// Claims the next dispatch index and evaluates the plan against it.
    fn next_decision(&self) -> FaultDecision {
        let index = self.counter.fetch_add(1, Ordering::Relaxed);
        self.plan.decide(index)
    }
}

/// The resilience knobs a caller threads through `dispatch_with_policy` /
/// `dispatch_batch_with_policy`. The default policy is **disabled** — zero
/// retries, no breaker — and byte-identical to the bare dispatch path, so
/// existing callers pay nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchPolicy {
    /// Retries allowed per request on top of the first attempt (transient
    /// failures only: injected timeouts and contained panics; a missing
    /// server or an open breaker is never retried).
    pub max_retries: u32,
    /// First virtual backoff in nanoseconds; retry *r* backs off
    /// `base << r`. The backoff is metered against the fabric clock and the
    /// batch deadline, never slept.
    pub backoff_base_ns: u64,
    /// Per-batch deadline in nanoseconds (0 = none): once elapsed time plus
    /// accounted virtual backoff reaches it, no further retries are granted.
    pub deadline_ns: u64,
    /// Consecutive transient failures that trip the origin's breaker open
    /// (0 disables the breaker entirely).
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before admitting one half-open
    /// probe, in nanoseconds on the fabric clock.
    pub breaker_cooldown_ns: u64,
}

impl FetchPolicy {
    /// The disabled policy: no retries, no breaker — bare dispatch semantics.
    #[must_use]
    pub fn disabled() -> Self {
        FetchPolicy::default()
    }

    /// A sensible resilient preset: 2 retries, 1ms base backoff, 250ms
    /// deadline, breaker off.
    #[must_use]
    pub fn resilient() -> Self {
        FetchPolicy {
            max_retries: 2,
            backoff_base_ns: 1_000_000,
            deadline_ns: 250_000_000,
            breaker_threshold: 0,
            breaker_cooldown_ns: 0,
        }
    }

    /// Sets the retry bound.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base virtual backoff.
    #[must_use]
    pub fn with_backoff_base_ns(mut self, backoff_base_ns: u64) -> Self {
        self.backoff_base_ns = backoff_base_ns;
        self
    }

    /// Sets the per-batch deadline.
    #[must_use]
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// Enables the per-origin circuit breaker.
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32, cooldown_ns: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown_ns = cooldown_ns;
        self
    }

    /// `true` when the policy changes nothing about a bare dispatch — the
    /// fast path skips the resilient loop (and its request clone) entirely.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.max_retries == 0 && self.breaker_threshold == 0
    }

    /// Virtual backoff owed after `completed_retries` retries: `base << r`,
    /// saturating.
    pub(crate) fn backoff_ns(&self, completed_retries: u32) -> u64 {
        if self.backoff_base_ns == 0 {
            return 0;
        }
        let shift = completed_retries.min(20);
        self.backoff_base_ns.saturating_mul(1u64 << shift)
    }
}

/// The circuit-breaker state machine phase for one origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Dispatches flow; consecutive transient failures are counted.
    Closed,
    /// Dispatches fail fast with [`NetError::CircuitOpen`] until the cooldown
    /// elapses on the fabric clock.
    Open,
    /// One probe is in flight; its outcome closes or re-opens the breaker.
    /// Concurrent callers fail fast rather than pile onto a sick origin.
    HalfOpen,
}

/// One origin's circuit breaker. The mutex is held only for the state
/// transition — never across a dispatch.
#[derive(Debug)]
pub(crate) struct Breaker {
    inner: Mutex<BreakerInner>,
}

#[derive(Debug)]
struct BreakerInner {
    phase: BreakerPhase,
    opened_at_ns: u64,
    consecutive_failures: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            inner: Mutex::new(BreakerInner {
                phase: BreakerPhase::Closed,
                opened_at_ns: 0,
                consecutive_failures: 0,
            }),
        }
    }
}

/// The fabric-wide chaos observability counters, all monotonic. Surfaced in
/// `ControlPlaneSnapshot` (and therefore the bench reports) as `cp_fault_*`,
/// `cp_retry_*` and `cp_breaker_*` keys.
#[derive(Debug, Default)]
pub(crate) struct ChaosCounters {
    pub(crate) faults_injected: AtomicU64,
    pub(crate) fault_slowdowns: AtomicU64,
    pub(crate) retry_attempts: AtomicU64,
    pub(crate) retry_successes: AtomicU64,
    pub(crate) retry_deadline_exhausted: AtomicU64,
    pub(crate) breaker_trips: AtomicU64,
    pub(crate) breaker_probes: AtomicU64,
    pub(crate) breaker_recoveries: AtomicU64,
    pub(crate) breaker_fast_fails: AtomicU64,
}

/// One batch's shared retry budget: the policy, the batch's start instant on
/// the fabric clock, and the virtual backoff accounted so far across all of
/// the batch's slots.
#[derive(Debug)]
pub(crate) struct BatchBudget {
    pub(crate) policy: FetchPolicy,
    started_ns: u64,
    virtual_backoff_ns: AtomicU64,
}

impl BatchBudget {
    pub(crate) fn new(fabric: &SharedNetwork, policy: FetchPolicy) -> Self {
        BatchBudget {
            policy,
            started_ns: fabric.clock_now_ns(),
            virtual_backoff_ns: AtomicU64::new(0),
        }
    }
}

/// The resilient per-slot dispatch loop shared by the pooled drain, the
/// inline batch path and the single-request `dispatch_with_policy`:
/// breaker admission, one contained dispatch attempt, bounded retries with
/// virtual backoff metered against the batch deadline. Returns the final
/// outcome plus how many retries this slot consumed.
///
/// The request is re-sent **verbatim** on every attempt — same URL, same
/// mediated `Cookie` header, same reserved sequence number — so a retry can
/// never widen what the reference monitor already decided, and the
/// sequence-sorted log stays oracle-identical (failed attempts are unlogged;
/// the eventual success logs under the original sequence).
pub(crate) fn dispatch_slot_resilient(
    fabric: &SharedNetwork,
    base: Option<u64>,
    index: usize,
    request: Request,
    budget: &BatchBudget,
) -> (Result<Response, NetError>, u32) {
    let policy = budget.policy;
    let origin = request.url.origin();
    let mut retries: u32 = 0;
    loop {
        if let Err(open) = fabric.breaker_admit(&origin, &policy) {
            return (Err(open), retries);
        }
        match dispatch_containing_panics(fabric, base, index, request.clone()) {
            Ok(response) => {
                fabric.breaker_record(&origin, &policy, true);
                if retries > 0 {
                    fabric
                        .chaos()
                        .retry_successes
                        .fetch_add(1, Ordering::Relaxed);
                }
                return (Ok(response), retries);
            }
            Err(error) => {
                if !error.is_transient() {
                    // A missing server or an open breaker is a fact, not a
                    // blip — and a denial never even reaches here, because a
                    // denied plan dispatches (cookie-less) successfully: the
                    // monitor's "no" is not an error to retry around.
                    return (Err(error), retries);
                }
                fabric.breaker_record(&origin, &policy, false);
                if retries >= policy.max_retries {
                    return (Err(error), retries);
                }
                // Deterministic virtual backoff: accounted against the batch
                // deadline on the fabric clock, never slept — under a
                // ManualClock the whole retry schedule is exactly countable.
                let backoff = policy.backoff_ns(retries);
                let owed = budget
                    .virtual_backoff_ns
                    .fetch_add(backoff, Ordering::Relaxed)
                    .saturating_add(backoff);
                let spent = fabric.clock_now_ns().saturating_sub(budget.started_ns);
                if policy.deadline_ns > 0 && spent.saturating_add(owed) >= policy.deadline_ns {
                    fabric
                        .chaos()
                        .retry_deadline_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    return (Err(error), retries);
                }
                retries += 1;
                fabric
                    .chaos()
                    .retry_attempts
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl SharedNetwork {
    /// Installs (or replaces) the fault plan for an origin given as a URL
    /// string. Installation is independent of server registration — a plan
    /// may be installed before the origin exists — and replacing a plan
    /// resets the origin's dispatch counter, so each installed plan replays
    /// from index 0.
    ///
    /// # Panics
    ///
    /// Panics if `origin_url` cannot be parsed — fault injection is harness
    /// configuration with literal URLs, so a parse failure is a setup bug.
    pub fn inject_fault(&self, origin_url: &str, plan: FaultPlan) {
        let origin =
            Origin::parse_url(origin_url).expect("fault injection requires a valid origin URL");
        self.inject_fault_origin(origin, plan);
    }

    /// Installs (or replaces) the fault plan for an already-parsed origin.
    pub fn inject_fault_origin(&self, origin: Origin, plan: FaultPlan) {
        self.faults
            .write()
            .expect("fault plan map lock")
            .insert(origin, Arc::new(FaultState::new(plan)));
    }

    /// Removes the fault plan for an origin (no-op when none is installed).
    pub fn clear_fault(&self, origin_url: &str) {
        let origin =
            Origin::parse_url(origin_url).expect("fault injection requires a valid origin URL");
        self.faults
            .write()
            .expect("fault plan map lock")
            .remove(&origin);
    }

    /// Removes every installed fault plan.
    pub fn clear_faults(&self) {
        self.faults.write().expect("fault plan map lock").clear();
    }

    /// The installed fault plan for an origin, if any.
    #[must_use]
    pub fn fault_plan(&self, origin: &Origin) -> Option<FaultPlan> {
        self.faults
            .read()
            .expect("fault plan map lock")
            .get(origin)
            .map(|state| state.plan.clone())
    }

    /// Consults (and advances) the origin's fault plan for one dispatch.
    /// Origins without a plan always proceed cleanly.
    pub(crate) fn fault_decision(&self, origin: &Origin) -> FaultDecision {
        let state = self
            .faults
            .read()
            .expect("fault plan map lock")
            .get(origin)
            .cloned();
        state.map_or_else(FaultDecision::default, |state| state.next_decision())
    }

    /// Replaces the fabric clock that meters retry backoff, batch deadlines
    /// and breaker cooldowns. Defaults to a monotonic wall clock; install a
    /// [`ManualClock`](escudo_core::ManualClock) to make the whole resilience
    /// schedule exactly countable.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write().expect("fabric clock lock") = clock;
    }

    /// The current fabric-clock reading in nanoseconds.
    pub(crate) fn clock_now_ns(&self) -> u64 {
        self.clock.read().expect("fabric clock lock").now_ns()
    }

    /// The circuit-breaker phase for an origin — `None` until a policy with a
    /// breaker has dispatched to it.
    #[must_use]
    pub fn breaker_phase(&self, origin: &Origin) -> Option<BreakerPhase> {
        self.breakers
            .read()
            .expect("breaker map lock")
            .get(origin)
            .map(|b| b.inner.lock().expect("breaker lock").phase)
    }

    fn breaker_for(&self, origin: &Origin) -> Arc<Breaker> {
        if let Some(breaker) = self.breakers.read().expect("breaker map lock").get(origin) {
            return Arc::clone(breaker);
        }
        match self
            .breakers
            .write()
            .expect("breaker map lock")
            .entry(origin.clone())
        {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => Arc::clone(e.insert(Arc::new(Breaker::new()))),
        }
    }

    /// Asks the origin's breaker whether a dispatch may proceed. `Closed`
    /// admits; `Open` fails fast until the cooldown elapses on the fabric
    /// clock, at which point exactly one caller transitions it to `HalfOpen`
    /// and becomes the probe; other `HalfOpen` callers fail fast.
    pub(crate) fn breaker_admit(
        &self,
        origin: &Origin,
        policy: &FetchPolicy,
    ) -> Result<(), NetError> {
        if policy.breaker_threshold == 0 {
            return Ok(());
        }
        let breaker = self.breaker_for(origin);
        let mut inner = breaker.inner.lock().expect("breaker lock");
        match inner.phase {
            BreakerPhase::Closed => Ok(()),
            BreakerPhase::HalfOpen => {
                self.chaos()
                    .breaker_fast_fails
                    .fetch_add(1, Ordering::Relaxed);
                Err(NetError::CircuitOpen {
                    origin: origin.to_string(),
                    cooldown_ns: 0,
                })
            }
            BreakerPhase::Open => {
                let elapsed = self.clock_now_ns().saturating_sub(inner.opened_at_ns);
                if elapsed >= policy.breaker_cooldown_ns {
                    inner.phase = BreakerPhase::HalfOpen;
                    self.chaos().breaker_probes.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    self.chaos()
                        .breaker_fast_fails
                        .fetch_add(1, Ordering::Relaxed);
                    Err(NetError::CircuitOpen {
                        origin: origin.to_string(),
                        cooldown_ns: policy.breaker_cooldown_ns - elapsed,
                    })
                }
            }
        }
    }

    /// Records a dispatch outcome with the origin's breaker: success closes
    /// it (counting a recovery when it was half-open); a transient failure
    /// counts toward the trip threshold, and any failure while half-open
    /// re-opens immediately.
    pub(crate) fn breaker_record(&self, origin: &Origin, policy: &FetchPolicy, success: bool) {
        if policy.breaker_threshold == 0 {
            return;
        }
        let breaker = self.breaker_for(origin);
        let mut inner = breaker.inner.lock().expect("breaker lock");
        if success {
            if inner.phase == BreakerPhase::HalfOpen {
                self.chaos()
                    .breaker_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
            inner.phase = BreakerPhase::Closed;
            inner.consecutive_failures = 0;
            return;
        }
        match inner.phase {
            BreakerPhase::HalfOpen => {
                inner.phase = BreakerPhase::Open;
                inner.opened_at_ns = self.clock_now_ns();
                inner.consecutive_failures = 0;
                self.chaos().breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
            BreakerPhase::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= policy.breaker_threshold {
                    inner.phase = BreakerPhase::Open;
                    inner.opened_at_ns = self.clock_now_ns();
                    inner.consecutive_failures = 0;
                    self.chaos().breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerPhase::Open => {}
        }
    }

    /// Dispatches one request under a fresh sequence number through the
    /// resilient loop: breaker admission, bounded retries with virtual
    /// backoff, deadline accounting — the navigation and XHR counterpart of
    /// `dispatch_batch_with_policy`. A disabled policy falls through to the
    /// bare [`dispatch`](SharedNetwork::dispatch) (identical semantics, zero
    /// overhead).
    ///
    /// # Errors
    ///
    /// The final attempt's error: [`NetError::Timeout`] /
    /// [`NetError::FetchPanicked`] once retries are exhausted,
    /// [`NetError::CircuitOpen`] when the origin's breaker refused admission,
    /// or [`NetError::HostUnreachable`] (never retried).
    pub fn dispatch_with_policy(
        &self,
        request: Request,
        policy: &FetchPolicy,
    ) -> Result<Response, NetError> {
        if policy.is_disabled() {
            return self.dispatch(request);
        }
        let sequence = self.reserve_sequences(1);
        let budget = BatchBudget::new(self, *policy);
        dispatch_slot_resilient(self, Some(sequence), 0, request, &budget).0
    }

    /// Dispatches one request under a **caller-reserved** sequence number
    /// through the resilient loop, returning the outcome plus the retries the
    /// slot consumed. This is the coalesced-duplicate fallback of the
    /// subresource loader: when a single-flight primary failed, each duplicate
    /// slot re-dispatches itself under its own pre-reserved sequence with the
    /// session's full retry budget, exactly as a non-coalesced plan slot would
    /// have. A disabled policy falls through to the bare
    /// [`dispatch_sequenced`](SharedNetwork::dispatch_sequenced).
    ///
    /// # Errors
    ///
    /// The final attempt's error, exactly as
    /// [`dispatch_with_policy`](SharedNetwork::dispatch_with_policy).
    pub fn dispatch_sequenced_with_policy(
        &self,
        sequence: u64,
        request: Request,
        policy: &FetchPolicy,
    ) -> (Result<Response, NetError>, u32) {
        if policy.is_disabled() {
            return (self.dispatch_sequenced(sequence, request), 0);
        }
        let budget = BatchBudget::new(self, *policy);
        dispatch_slot_resilient(self, Some(sequence), 0, request, &budget)
    }

    /// Failing faults injected so far (timeouts and planned panics).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.chaos().faults_injected.load(Ordering::Relaxed)
    }

    /// Dispatches slowed by an injected [`FaultSchedule::SlowBy`] schedule.
    #[must_use]
    pub fn fault_slowdowns(&self) -> u64 {
        self.chaos().fault_slowdowns.load(Ordering::Relaxed)
    }

    /// Retry attempts granted across all resilient dispatches.
    #[must_use]
    pub fn retry_attempts(&self) -> u64 {
        self.chaos().retry_attempts.load(Ordering::Relaxed)
    }

    /// Resilient dispatches that succeeded only after at least one retry.
    #[must_use]
    pub fn retry_successes(&self) -> u64 {
        self.chaos().retry_successes.load(Ordering::Relaxed)
    }

    /// Retries refused because the batch deadline budget was exhausted.
    #[must_use]
    pub fn retry_deadline_exhausted(&self) -> u64 {
        self.chaos()
            .retry_deadline_exhausted
            .load(Ordering::Relaxed)
    }

    /// Times an origin breaker tripped open (including half-open re-trips).
    #[must_use]
    pub fn breaker_trips(&self) -> u64 {
        self.chaos().breaker_trips.load(Ordering::Relaxed)
    }

    /// Half-open probes admitted after a breaker cooldown elapsed.
    #[must_use]
    pub fn breaker_probes(&self) -> u64 {
        self.chaos().breaker_probes.load(Ordering::Relaxed)
    }

    /// Breakers closed by a successful half-open probe.
    #[must_use]
    pub fn breaker_recoveries(&self) -> u64 {
        self.chaos().breaker_recoveries.load(Ordering::Relaxed)
    }

    /// Dispatches refused outright by an open (or probing) breaker.
    #[must_use]
    pub fn breaker_fast_fails(&self) -> u64 {
        self.chaos().breaker_fast_fails.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::ManualClock;

    fn echo(req: &Request) -> Response {
        Response::ok_text(req.url.path().to_string())
    }

    #[test]
    fn plans_compose_and_replay_deterministically() {
        let plan = FaultPlan::new().fail_first(2).every_nth(5).slow_by(100);
        // Index 0,1: FailFirst; index 4, 9: EveryNth; all slowed.
        let verdicts: Vec<FaultOutcome> = (0..10).map(|i| plan.decide(i).outcome).collect();
        use FaultOutcome::{Proceed, Timeout};
        assert_eq!(
            verdicts,
            vec![
                Timeout, Timeout, Proceed, Proceed, Timeout, Proceed, Proceed, Proceed, Proceed,
                Timeout
            ]
        );
        assert!((0..10).all(|i| plan.decide(i).slow_ns == 100));
        // Same plan, same indices, same verdicts — replay is exact.
        assert_eq!(
            (0..10).map(|i| plan.decide(i)).collect::<Vec<_>>(),
            (0..10).map(|i| plan.decide(i)).collect::<Vec<_>>()
        );
        // Panic outranks Timeout when both fire.
        let both = FaultPlan::new().timeout().panicking();
        assert_eq!(both.decide(0).outcome, FaultOutcome::Panic);
        // EveryNth(0) never fires.
        assert!(FaultPlan::new().every_nth(0).decide(0).is_clean());
    }

    #[test]
    fn injected_timeouts_fire_on_schedule_and_heal() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo);
        net.inject_fault("http://a.example", FaultPlan::new().fail_first(2));
        for i in 0..2 {
            let err = net
                .dispatch(Request::get(&format!("http://a.example/{i}")).unwrap())
                .unwrap_err();
            assert!(
                matches!(err, NetError::Timeout { ref origin, .. } if origin.contains("a.example")),
                "dispatch {i} should time out, got {err}"
            );
        }
        // The schedule heals at index 2.
        assert!(net
            .dispatch(Request::get("http://a.example/ok").unwrap())
            .is_ok());
        assert_eq!(net.faults_injected(), 2);
        assert_eq!(net.log_len(), 1, "faulted dispatches are never logged");
        // Re-installing a plan replays from index 0.
        net.inject_fault("http://a.example", FaultPlan::new().fail_first(1));
        assert!(net
            .dispatch(Request::get("http://a.example/again").unwrap())
            .is_err());
        net.clear_fault("http://a.example");
        assert!(net
            .dispatch(Request::get("http://a.example/healed").unwrap())
            .is_ok());
    }

    #[test]
    fn faults_can_be_installed_before_registration() {
        let net = SharedNetwork::new();
        net.inject_fault("http://later.example", FaultPlan::new().timeout());
        net.register("http://later.example", echo);
        assert!(net
            .dispatch(Request::get("http://later.example/").unwrap())
            .is_err());
        assert!(net
            .fault_plan(&Origin::parse_url("http://later.example").unwrap())
            .is_some());
    }

    #[test]
    fn retries_mask_transient_faults_within_the_budget() {
        let net = SharedNetwork::new();
        net.register("http://flaky.example", echo);
        net.inject_fault("http://flaky.example", FaultPlan::new().fail_first(2));
        let policy = FetchPolicy::default().with_max_retries(2);
        let response = net
            .dispatch_with_policy(Request::get("http://flaky.example/x").unwrap(), &policy)
            .unwrap();
        assert_eq!(response.body, "/x");
        assert_eq!(net.retry_attempts(), 2);
        assert_eq!(net.retry_successes(), 1);
        assert_eq!(net.faults_injected(), 2);
        assert_eq!(net.log_len(), 1, "one success, logged once");
    }

    #[test]
    fn retries_stop_at_the_budget_and_unreachable_hosts_are_never_retried() {
        let net = SharedNetwork::new();
        net.register("http://down.example", echo);
        net.inject_fault("http://down.example", FaultPlan::new().timeout());
        let policy = FetchPolicy::default().with_max_retries(3);
        let err = net
            .dispatch_with_policy(Request::get("http://down.example/x").unwrap(), &policy)
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
        assert_eq!(net.retry_attempts(), 3, "exactly max_retries retries");
        assert_eq!(net.faults_injected(), 4, "initial attempt + 3 retries");
        // A missing server is permanent: no retry is burned on it.
        let before = net.retry_attempts();
        let err = net
            .dispatch_with_policy(Request::get("http://nowhere.example/").unwrap(), &policy)
            .unwrap_err();
        assert!(matches!(err, NetError::HostUnreachable(_)));
        assert_eq!(net.retry_attempts(), before);
    }

    #[test]
    fn virtual_backoff_meets_the_deadline_exactly_under_a_manual_clock() {
        let net = SharedNetwork::new();
        net.set_clock(Arc::new(ManualClock::new()));
        net.register("http://down.example", echo);
        net.inject_fault("http://down.example", FaultPlan::new().timeout());
        // Backoff schedule 1ms, 2ms, … against a 3ms deadline: the first
        // retry is granted (1ms owed < 3ms), the second refused (3ms ≥ 3ms).
        let policy = FetchPolicy::default()
            .with_max_retries(10)
            .with_backoff_base_ns(1_000_000)
            .with_deadline_ns(3_000_000);
        let err = net
            .dispatch_with_policy(Request::get("http://down.example/x").unwrap(), &policy)
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
        assert_eq!(net.retry_attempts(), 1);
        assert_eq!(net.retry_deadline_exhausted(), 1);
        assert_eq!(net.faults_injected(), 2, "two attempts total");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed_on_the_manual_clock() {
        let net = SharedNetwork::new();
        let clock = Arc::new(ManualClock::new());
        net.set_clock(Arc::<ManualClock>::clone(&clock));
        net.register("http://sick.example", echo);
        net.inject_fault("http://sick.example", FaultPlan::new().timeout());
        let origin = Origin::parse_url("http://sick.example").unwrap();
        let policy = FetchPolicy::default().with_breaker(3, 1_000_000_000);

        // Three consecutive transient failures trip the breaker open.
        for _ in 0..3 {
            let err = net
                .dispatch_with_policy(Request::get("http://sick.example/").unwrap(), &policy)
                .unwrap_err();
            assert!(matches!(err, NetError::Timeout { .. }));
        }
        assert_eq!(net.breaker_phase(&origin), Some(BreakerPhase::Open));
        assert_eq!(net.breaker_trips(), 1);

        // Open within the cooldown: fail fast, carrying the remaining wait.
        let err = net
            .dispatch_with_policy(Request::get("http://sick.example/").unwrap(), &policy)
            .unwrap_err();
        assert!(
            matches!(err, NetError::CircuitOpen { cooldown_ns, .. } if cooldown_ns == 1_000_000_000)
        );
        assert_eq!(net.breaker_fast_fails(), 1);

        // Cooldown elapses; the origin heals; the single probe closes it.
        clock.advance_ns(1_000_000_000);
        net.clear_fault("http://sick.example");
        let ok = net
            .dispatch_with_policy(Request::get("http://sick.example/ok").unwrap(), &policy)
            .unwrap();
        assert_eq!(ok.body, "/ok");
        assert_eq!(net.breaker_phase(&origin), Some(BreakerPhase::Closed));
        assert_eq!(net.breaker_probes(), 1);
        assert_eq!(net.breaker_recoveries(), 1);
    }

    #[test]
    fn a_failed_probe_reopens_the_breaker() {
        let net = SharedNetwork::new();
        let clock = Arc::new(ManualClock::new());
        net.set_clock(Arc::<ManualClock>::clone(&clock));
        net.register("http://sick.example", echo);
        net.inject_fault("http://sick.example", FaultPlan::new().timeout());
        let origin = Origin::parse_url("http://sick.example").unwrap();
        let policy = FetchPolicy::default().with_breaker(2, 500);
        for _ in 0..2 {
            let _ =
                net.dispatch_with_policy(Request::get("http://sick.example/").unwrap(), &policy);
        }
        assert_eq!(net.breaker_phase(&origin), Some(BreakerPhase::Open));
        clock.advance_ns(500);
        // Still faulted: the probe fails and the breaker re-trips.
        let _ = net.dispatch_with_policy(Request::get("http://sick.example/").unwrap(), &policy);
        assert_eq!(net.breaker_phase(&origin), Some(BreakerPhase::Open));
        assert_eq!(net.breaker_trips(), 2);
        assert_eq!(net.breaker_probes(), 1);
        assert_eq!(net.breaker_recoveries(), 0);
    }

    #[test]
    fn disabled_policies_change_nothing() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo);
        assert!(FetchPolicy::default().is_disabled());
        assert!(!FetchPolicy::resilient().is_disabled());
        let response = net
            .dispatch_with_policy(
                Request::get("http://a.example/x").unwrap(),
                &FetchPolicy::disabled(),
            )
            .unwrap();
        assert_eq!(response.body, "/x");
        assert_eq!(net.retry_attempts(), 0);
        assert_eq!(
            net.breaker_phase(&Origin::parse_url("http://a.example").unwrap()),
            None
        );
    }

    #[test]
    fn slowdowns_are_slept_but_counted_separately_from_failures() {
        let net = SharedNetwork::new();
        net.register("http://slowed.example", echo);
        net.inject_fault("http://slowed.example", FaultPlan::new().slow_by(1_000_000));
        let start = std::time::Instant::now();
        assert!(net
            .dispatch(Request::get("http://slowed.example/").unwrap())
            .is_ok());
        assert!(start.elapsed() >= std::time::Duration::from_millis(1));
        assert_eq!(net.fault_slowdowns(), 1);
        assert_eq!(net.faults_injected(), 0, "a slowdown is not a failure");
    }
}
