//! # escudo-net
//!
//! The HTTP substrate the ESCUDO browser runs on. The paper's prototype sat inside the
//! Lobo browser and talked to real web servers; the enforcement points it adds only
//! require requests, responses, headers, cookies and origins — so this crate provides
//! exactly those as an **in-memory network**:
//!
//! * [`Url`] / [`escudo_core::Origin`] — the address space,
//! * [`Request`] / [`Response`] / [`Headers`] / [`Method`] / [`StatusCode`] — messages,
//! * [`Cookie`] / [`SetCookie`] / [`CookieJar`] / [`SharedCookieJar`] — the cookie
//!   stores (single-threaded and host-sharded concurrent) whose *attachment* decision
//!   is delegated to the caller (the browser's reference monitor decides the `use`
//!   operation),
//! * [`Network`] / [`SharedNetwork`] / [`Server`] — a host registry mapping origins
//!   to request handlers, with a request log the CSRF experiments read to see
//!   whether a session cookie was attached to a forged request. [`SharedNetwork`]
//!   is the `Arc`-shareable fabric (per-origin handler mutexes, lock-striped
//!   sequence-ordered log, simulated latency); [`Network`] is the single-owner
//!   convenience handle over one.
//!
//! # Example
//!
//! ```
//! use escudo_net::{Method, Network, Request, Response, Server, Url};
//!
//! struct Hello;
//! impl Server for Hello {
//!     fn handle(&mut self, req: &Request) -> Response {
//!         Response::ok_html(format!("<html><body>hello {}</body></html>", req.url.path()))
//!     }
//! }
//!
//! let mut net = Network::new();
//! net.register("http://hello.example", Hello);
//! let req = Request::new(Method::Get, Url::parse("http://hello.example/world")?);
//! let resp = net.dispatch(req)?;
//! assert!(resp.body.contains("hello /world"));
//! # Ok::<(), escudo_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cookie;
pub mod error;
pub mod fault;
pub mod fetch_pool;
pub mod headers;
pub mod jar;
pub mod message;
pub mod network;
pub mod response_cache;
pub mod shared_jar;
pub mod shared_network;
pub mod url;

pub use cookie::{Cookie, SetCookie};
pub use error::NetError;
pub use fault::{BreakerPhase, FaultOutcome, FaultPlan, FaultSchedule, FetchPolicy};
pub use fetch_pool::{BackgroundBatch, Priority};
pub use headers::Headers;
pub use jar::CookieJar;
pub use message::{Method, Request, Response, StatusCode};
pub use network::{LoggedRequest, Network, Server};
pub use response_cache::{CacheHit, CacheLayers, ResponseCache};
pub use shared_jar::{JarShardStats, JarStats, SharedCookieJar};
pub use shared_network::SharedNetwork;
pub use url::Url;
