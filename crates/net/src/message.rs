//! HTTP requests and responses.

use std::fmt;
use std::str::FromStr;

use escudo_core::config::{ApiPolicy, CookiePolicy, API_POLICY_HEADER, COOKIE_POLICY_HEADER};

use crate::cookie::SetCookie;
use crate::error::NetError;
use crate::headers::Headers;
use crate::url::{parse_query, Url};

/// The HTTP request methods the applications in this repo use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD`
    Head,
}

impl Method {
    /// The canonical upper-case name.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(NetError::InvalidMethod(other.to_string())),
        }
    }
}

/// An HTTP status code (only the handful the in-memory applications emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 302 Found (redirect).
    pub const FOUND: StatusCode = StatusCode(302);
    /// 303 See Other.
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);

    /// `true` for 2xx codes.
    #[must_use]
    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }

    /// `true` for 3xx codes.
    #[must_use]
    pub const fn is_redirect(self) -> bool {
        self.0 >= 300 && self.0 < 400
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP request as issued by the browser (or forged by an attacker page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The absolute request URL.
    pub url: Url,
    /// Request headers (including `Cookie` when the browser attached cookies).
    pub headers: Headers,
    /// The request body (form-encoded for POSTs in this repo).
    pub body: String,
}

impl Request {
    /// Creates a request with no headers and an empty body.
    #[must_use]
    pub fn new(method: Method, url: Url) -> Self {
        Request {
            method,
            url,
            headers: Headers::new(),
            body: String::new(),
        }
    }

    /// Convenience constructor for a GET request to a URL string.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidUrl`] when the URL cannot be parsed.
    pub fn get(url: &str) -> Result<Self, NetError> {
        Ok(Request::new(Method::Get, Url::parse(url)?))
    }

    /// Convenience constructor for a form POST.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidUrl`] when the URL cannot be parsed.
    pub fn post_form(url: &str, form: &[(&str, &str)]) -> Result<Self, NetError> {
        let mut req = Request::new(Method::Post, Url::parse(url)?);
        req.body = form
            .iter()
            .map(|(k, v)| {
                format!(
                    "{}={}",
                    crate::url::percent_encode(k),
                    crate::url::percent_encode(v)
                )
            })
            .collect::<Vec<_>>()
            .join("&");
        req.headers
            .set("Content-Type", "application/x-www-form-urlencoded");
        Ok(req)
    }

    /// Sets a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.set(name, value);
        self
    }

    /// The form fields of a POST body (or the query parameters of a GET), decoded.
    #[must_use]
    pub fn form_params(&self) -> Vec<(String, String)> {
        match self.method {
            Method::Post => parse_query(&self.body),
            _ => self.url.query_params(),
        }
    }

    /// Looks up a form/query parameter by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<String> {
        self.form_params()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .or_else(|| self.url.query_param(name))
    }

    /// The names of the cookies attached to this request (parsed from the `Cookie`
    /// header). The CSRF experiments use this to check whether a session cookie rode
    /// along with a forged request.
    #[must_use]
    pub fn cookie_names(&self) -> Vec<String> {
        self.cookies().into_iter().map(|(n, _)| n).collect()
    }

    /// The cookies attached to this request as `(name, value)` pairs.
    #[must_use]
    pub fn cookies(&self) -> Vec<(String, String)> {
        let Some(header) = self.headers.get("Cookie") else {
            return Vec::new();
        };
        header
            .split(';')
            .filter_map(|pair| {
                let (name, value) = pair.trim().split_once('=')?;
                Some((name.trim().to_string(), value.trim().to_string()))
            })
            .collect()
    }

    /// Looks up an attached cookie by name.
    #[must_use]
    pub fn cookie(&self, name: &str) -> Option<String> {
        self.cookies()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.method, self.url)
    }
}

/// An HTTP response as produced by one of the in-memory servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Response headers (`Set-Cookie`, the ESCUDO policy headers, `Location`, …).
    pub headers: Headers,
    /// The response body (HTML for pages, plain text for API endpoints).
    pub body: String,
}

impl Response {
    /// A `200 OK` response with an HTML body.
    #[must_use]
    pub fn ok_html(body: impl Into<String>) -> Self {
        let mut headers = Headers::new();
        headers.set("Content-Type", "text/html; charset=utf-8");
        Response {
            status: StatusCode::OK,
            headers,
            body: body.into(),
        }
    }

    /// A `200 OK` response with a plain-text body (API endpoints).
    #[must_use]
    pub fn ok_text(body: impl Into<String>) -> Self {
        let mut headers = Headers::new();
        headers.set("Content-Type", "text/plain; charset=utf-8");
        Response {
            status: StatusCode::OK,
            headers,
            body: body.into(),
        }
    }

    /// A redirect to `location`.
    #[must_use]
    pub fn redirect(location: &str) -> Self {
        let mut headers = Headers::new();
        headers.set("Location", location);
        Response {
            status: StatusCode::SEE_OTHER,
            headers,
            body: String::new(),
        }
    }

    /// An error response with the given status and plain-text body.
    #[must_use]
    pub fn error(status: StatusCode, message: impl Into<String>) -> Self {
        let mut headers = Headers::new();
        headers.set("Content-Type", "text/plain; charset=utf-8");
        Response {
            status,
            headers,
            body: message.into(),
        }
    }

    /// Declares the response cacheable for `seconds` via `Cache-Control: max-age`
    /// (builder style). The shared response cache only stores responses that opt
    /// in explicitly, so static assets use this to become cache-eligible.
    #[must_use]
    pub fn with_max_age(mut self, seconds: u64) -> Self {
        self.headers
            .set("Cache-Control", format!("max-age={seconds}"));
        self
    }

    /// Adds a `Set-Cookie` header (builder style).
    #[must_use]
    pub fn with_cookie(mut self, cookie: SetCookie) -> Self {
        self.headers.append("Set-Cookie", cookie.to_header_value());
        self
    }

    /// Adds an ESCUDO cookie-policy header (builder style).
    #[must_use]
    pub fn with_cookie_policy(mut self, policy: &CookiePolicy) -> Self {
        self.headers
            .append(COOKIE_POLICY_HEADER, policy.to_header_value());
        self
    }

    /// Adds an ESCUDO API-policy header (builder style).
    #[must_use]
    pub fn with_api_policy(mut self, policy: &ApiPolicy) -> Self {
        self.headers
            .append(API_POLICY_HEADER, policy.to_header_value());
        self
    }

    /// All `Set-Cookie` directives carried by this response.
    #[must_use]
    pub fn set_cookies(&self) -> Vec<SetCookie> {
        self.headers
            .get_all("Set-Cookie")
            .into_iter()
            .filter_map(|value| SetCookie::parse(value).ok())
            .collect()
    }

    /// All ESCUDO cookie policies carried by this response. Malformed policy headers
    /// are skipped (a real browser must not crash on a bad header; the fail-safe
    /// default then applies to the affected cookie).
    #[must_use]
    pub fn cookie_policies(&self) -> Vec<CookiePolicy> {
        self.headers
            .get_all(COOKIE_POLICY_HEADER)
            .into_iter()
            .filter_map(|value| value.parse().ok())
            .collect()
    }

    /// All ESCUDO API policies carried by this response.
    #[must_use]
    pub fn api_policies(&self) -> Vec<ApiPolicy> {
        self.headers
            .get_all(API_POLICY_HEADER)
            .into_iter()
            .filter_map(|value| value.parse().ok())
            .collect()
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HTTP {} ({} bytes)", self.status, self.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escudo_core::config::NativeApi;
    use escudo_core::Ring;

    #[test]
    fn method_parsing_is_case_insensitive() {
        assert_eq!("get".parse::<Method>().unwrap(), Method::Get);
        assert_eq!("POST".parse::<Method>().unwrap(), Method::Post);
        assert!("DELETE".parse::<Method>().is_err());
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_redirect());
        assert!(StatusCode::SEE_OTHER.is_redirect());
        assert!(!StatusCode::FORBIDDEN.is_success());
    }

    #[test]
    fn post_form_encodes_the_body() {
        let req = Request::post_form(
            "http://forum.example/posting.php",
            &[("subject", "hello world"), ("message", "a&b")],
        )
        .unwrap();
        assert_eq!(req.body, "subject=hello+world&message=a%26b");
        assert_eq!(req.param("subject").as_deref(), Some("hello world"));
        assert_eq!(req.param("message").as_deref(), Some("a&b"));
    }

    #[test]
    fn get_params_come_from_the_query_string() {
        let req = Request::get("http://cal.example/index.php?action=add&day=3").unwrap();
        assert_eq!(req.param("action").as_deref(), Some("add"));
        assert_eq!(req.param("day").as_deref(), Some("3"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn cookie_header_parsing() {
        let req = Request::get("http://forum.example/")
            .unwrap()
            .with_header("Cookie", "sid=abc123; data=xyz");
        assert_eq!(req.cookie_names(), vec!["sid", "data"]);
        assert_eq!(req.cookie("sid").as_deref(), Some("abc123"));
        assert_eq!(req.cookie("nope"), None);
    }

    #[test]
    fn request_without_cookie_header_has_no_cookies() {
        let req = Request::get("http://forum.example/").unwrap();
        assert!(req.cookies().is_empty());
    }

    #[test]
    fn response_builders_set_expected_headers() {
        let resp = Response::ok_html("<html></html>");
        assert!(resp
            .headers
            .get("Content-Type")
            .unwrap()
            .contains("text/html"));
        let resp = Response::redirect("/index.php");
        assert_eq!(resp.status, StatusCode::SEE_OTHER);
        assert_eq!(resp.headers.get("Location"), Some("/index.php"));
    }

    #[test]
    fn escudo_policy_headers_roundtrip_through_a_response() {
        let cookie_policy = CookiePolicy::new("sid", Ring::new(1));
        let api_policy = ApiPolicy::new(NativeApi::XmlHttpRequest, Ring::new(1));
        let resp = Response::ok_html("<html></html>")
            .with_cookie(SetCookie::new("sid", "abc"))
            .with_cookie_policy(&cookie_policy)
            .with_api_policy(&api_policy);
        assert_eq!(resp.set_cookies().len(), 1);
        assert_eq!(resp.cookie_policies(), vec![cookie_policy]);
        assert_eq!(resp.api_policies(), vec![api_policy]);
    }

    #[test]
    fn malformed_policy_headers_are_skipped_not_fatal() {
        let mut resp = Response::ok_html("x");
        resp.headers.append(COOKIE_POLICY_HEADER, "ring=1"); // missing name
        resp.headers.append(API_POLICY_HEADER, "api=telepathy");
        assert!(resp.cookie_policies().is_empty());
        assert!(resp.api_policies().is_empty());
    }
}
