//! The thread-safe, `Arc`-shareable network fabric for concurrent sessions and
//! pipelined loaders.
//!
//! [`Network`](crate::Network) used to own its servers and its request log behind
//! `&mut self`, which serialized every fetch of every session — the contention-free
//! decision engine and the host-sharded cookie jar were throttled by a sequential
//! transport. [`SharedNetwork`] is the fabric those components deserve:
//!
//! * **Per-origin handlers.** Each registered [`Server`] sits behind its own
//!   `Mutex`, held only for the duration of one `handle` call — requests to
//!   *distinct* origins never contend, and requests to the same origin serialize
//!   exactly as a single-threaded server would. The origin→handler map itself is a
//!   read-mostly `RwLock` (writes only at registration time).
//! * **Lock-striped, sequence-ordered request log.** Every dispatch carries a
//!   sequence number from one atomic counter; the log entry lands in the stripe
//!   selected by the sequence's low bits (round-robin, so concurrent fetches hit
//!   different stripes). Reading the log gathers the stripes and sorts by sequence,
//!   reconstructing one global order. Callers that need *deterministic* order —
//!   the pipelined subresource loader — reserve a contiguous block of sequence
//!   numbers up front ([`SharedNetwork::reserve_sequences`]) and dispatch each
//!   pre-planned request under its pre-assigned number: the sorted log then shows
//!   document order regardless of completion order.
//! * **Bounded log.** Like the reference monitor's audit ring, the log keeps at
//!   most [`SharedNetwork::log_capacity`] entries; overflow drops the
//!   oldest (lowest-sequence) entries in amortized batches and counts them, so
//!   long multi-session runs stop growing memory without bound.
//! * **Simulated per-origin latency.** [`SharedNetwork::set_latency`] attaches a
//!   synthetic service time to an origin, slept *outside* every lock — so the
//!   pipelining win of overlapping slow fetches is measurable in-process, without
//!   sockets.
//! * **Persistent fetch worker pool.** [`SharedNetwork::dispatch_batch`] fans a
//!   pre-planned request batch out over parked worker threads the fabric owns
//!   and reuses across page loads ([`crate::fetch_pool`]) — submission costs a
//!   queue push and a notify, not a thread spawn per page. The pool's queue has
//!   two effective priority tiers (navigation preempts bulk/background, see
//!   [`crate::fetch_pool::Priority`]).
//! * **Mediation-keyed response cache.** The fabric owns one shared
//!   [`ResponseCache`](crate::response_cache::ResponseCache): sharded,
//!   capacity-bounded, holding `Arc<Response>` entries keyed by
//!   `(method, url)` and validated against the **mediated cookie header** the
//!   consuming request just computed for itself. The mediation plan is the
//!   key, so a stale plan (cookies or policy changed since the entry was
//!   stored) discards the entry and the request fetches live — a hit can
//!   never change a security decision, only skip a wire round trip whose
//!   request bytes it already proved identical. Speculative prefetch is the
//!   cache's *one-shot* layer: entries parked by background speculation are
//!   consumed at most once, exactly as the old bespoke prefetch cache did.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use escudo_core::{Clock, MonotonicClock, Origin};

use crate::error::NetError;
use crate::fault::FaultOutcome;
use crate::message::{Method, Request, Response};
use crate::network::{LoggedRequest, Server};
use crate::response_cache::{
    CacheHit, CacheLayers, ResponseCache, RESPONSE_CACHE_CAPACITY, RESPONSE_CACHE_SHARDS,
};

/// Default number of log stripes (a power of two so stripe selection is a mask).
pub const DEFAULT_LOG_STRIPE_COUNT: usize = 8;

/// Default bound on retained log entries (divided across the stripes).
pub const DEFAULT_LOG_CAPACITY: usize = 64 * 1024;

/// One registered origin: the handler behind its own short-held mutex, the
/// synthetic service latency dispatches to this origin pay, and an EWMA of the
/// observed end-to-end service time (latency sleep + handler call) that lets
/// planners estimate whether fanning fetches out is worth the thread overhead.
/// Handlers live behind an `Arc` so a dispatch can clone its handle out of the
/// origin map and **drop the map's read guard before sleeping or calling the
/// handler** — a concurrent `register` write therefore only ever waits for the
/// map lookup itself, never for a slow handler, and (on writer-preferring
/// rwlocks) cannot convoy dispatches to unrelated origins behind that writer.
struct OriginHandler {
    server: Mutex<Box<dyn Server + Send>>,
    /// Configured simulated latency in nanoseconds (atomic so `set_latency` can
    /// update it through the map's *read* guard).
    latency_ns: AtomicU64,
    /// EWMA of observed dispatch service time in nanoseconds (0 = no samples yet);
    /// relaxed updates — an estimate, not an accounting invariant.
    observed_ns: AtomicU64,
}

impl OriginHandler {
    fn latency(&self) -> Duration {
        Duration::from_nanos(self.latency_ns.load(Ordering::Relaxed))
    }
}

/// A log entry tagged with its global sequence number. Entries within a stripe are
/// *not* kept sorted (a pre-reserved sequence may be dispatched late); readers sort
/// globally when they gather the stripes.
#[derive(Debug, Clone)]
struct SequencedEntry {
    sequence: u64,
    entry: LoggedRequest,
}

/// The `Arc`-shareable network fabric: per-origin mutexed handlers, a lock-striped
/// sequence-ordered request log, and per-origin simulated latency.
///
/// Taken by `&self` everywhere; hand sessions an `Arc<SharedNetwork>` (that is what
/// `Browser::with_network` threads through browser- and script-initiated requests).
/// The single-owner [`Network`](crate::Network) is a thin wrapper over one of these.
pub struct SharedNetwork {
    servers: RwLock<HashMap<Origin, Arc<OriginHandler>>>,
    stripes: Vec<Mutex<Vec<SequencedEntry>>>,
    /// Bound on retained entries per stripe; 0 means unbounded.
    stripe_capacity: usize,
    dropped: AtomicU64,
    sequence: AtomicU64,
    /// The persistent fetch worker pool behind
    /// [`dispatch_batch`](SharedNetwork::dispatch_batch): lazily-spawned parked
    /// threads reused across every page load on this fabric.
    pool: crate::fetch_pool::FetchPool,
    /// The shared mediation-keyed response cache (persistent `max-age` layer
    /// plus the one-shot speculative-prefetch layer).
    cache: ResponseCache,
    /// Installed per-origin fault plans (independent of server registration —
    /// a plan may precede the origin it targets). See [`crate::fault`].
    pub(crate) faults: RwLock<HashMap<Origin, Arc<crate::fault::FaultState>>>,
    /// Lazily-created per-origin circuit breakers (only policies with a
    /// breaker threshold ever populate this).
    pub(crate) breakers: RwLock<HashMap<Origin, Arc<crate::fault::Breaker>>>,
    /// The injectable clock that meters retry backoff, batch deadlines and
    /// breaker cooldowns; a `ManualClock` makes all three exactly countable.
    pub(crate) clock: RwLock<Arc<dyn Clock>>,
    /// Monotonic chaos observability counters (faults, retries, breakers).
    chaos: crate::fault::ChaosCounters,
}

impl Default for SharedNetwork {
    fn default() -> Self {
        SharedNetwork::new()
    }
}

impl SharedNetwork {
    /// Creates an empty fabric with the default log bound.
    #[must_use]
    pub fn new() -> Self {
        SharedNetwork::with_log_capacity(DEFAULT_LOG_CAPACITY)
    }

    /// Creates an empty fabric whose request log retains at most `capacity`
    /// entries (0 disables the bound). The capacity is divided across
    /// [`DEFAULT_LOG_STRIPE_COUNT`] stripes rounding up, so the total bound can
    /// exceed `capacity` by up to `stripes - 1`.
    #[must_use]
    pub fn with_log_capacity(capacity: usize) -> Self {
        SharedNetwork::with_log_config(DEFAULT_LOG_STRIPE_COUNT, capacity)
    }

    /// Creates an empty fabric with an explicit stripe count (rounded up to a
    /// power of two, at least 1) and total log capacity (0 = unbounded).
    #[must_use]
    pub fn with_log_config(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let stripe_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(stripes)
        };
        SharedNetwork {
            servers: RwLock::new(HashMap::new()),
            stripes: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
            stripe_capacity,
            dropped: AtomicU64::new(0),
            sequence: AtomicU64::new(0),
            pool: crate::fetch_pool::FetchPool::new(),
            cache: ResponseCache::new(RESPONSE_CACHE_CAPACITY, RESPONSE_CACHE_SHARDS),
            faults: RwLock::new(HashMap::new()),
            breakers: RwLock::new(HashMap::new()),
            clock: RwLock::new(Arc::new(MonotonicClock::new())),
            chaos: crate::fault::ChaosCounters::default(),
        }
    }

    /// The fabric's chaos counters (crate-internal; read through the public
    /// per-counter getters in [`crate::fault`]).
    pub(crate) fn chaos(&self) -> &crate::fault::ChaosCounters {
        &self.chaos
    }

    /// The persistent fetch worker pool (crate-internal; batches go through
    /// [`SharedNetwork::dispatch_batch`]).
    pub(crate) fn pool(&self) -> &crate::fetch_pool::FetchPool {
        &self.pool
    }

    /// Parked fetch-pool worker threads currently alive (0 until the first
    /// batch actually fans out — the pool spawns lazily).
    #[must_use]
    pub fn fetch_pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Fetch jobs executed by pool workers so far (helping submitters' jobs are
    /// not counted — they never crossed a thread).
    #[must_use]
    pub fn fetch_pool_jobs_executed(&self) -> u64 {
        self.pool.jobs_executed()
    }

    /// Times a pool worker parked a bulk/background batch mid-drain to serve
    /// queued navigation work — the priority queue's preemption witness.
    #[must_use]
    pub fn fetch_pool_preemptions(&self) -> u64 {
        self.pool.preemptions()
    }

    /// Registers a server for an origin given as a URL string (the path is
    /// ignored). Re-registering an origin replaces the handler but keeps any
    /// configured latency.
    ///
    /// # Panics
    ///
    /// Panics if `origin_url` cannot be parsed — registration happens at setup
    /// time with literal URLs, so a parse failure is a programming error.
    pub fn register<S: Server + Send + 'static>(&self, origin_url: &str, server: S) {
        let origin = Origin::parse_url(origin_url)
            .expect("network registration requires a valid origin URL");
        self.register_origin(origin, server);
    }

    /// Registers a server for an already-parsed origin.
    pub fn register_origin<S: Server + Send + 'static>(&self, origin: Origin, server: S) {
        let mut servers = self.servers.write().expect("network server map lock");
        let (latency_ns, observed) = servers.get(&origin).map_or((0, 0), |h| {
            (
                h.latency_ns.load(Ordering::Relaxed),
                h.observed_ns.load(Ordering::Relaxed),
            )
        });
        servers.insert(
            origin,
            Arc::new(OriginHandler {
                server: Mutex::new(Box::new(server)),
                latency_ns: AtomicU64::new(latency_ns),
                observed_ns: AtomicU64::new(observed),
            }),
        );
    }

    /// Clones the handler handle for an origin out of the map, holding the map's
    /// read guard only for the lookup — never across a latency sleep or a
    /// handler call.
    fn handler(&self, origin: &Origin) -> Result<Arc<OriginHandler>, NetError> {
        self.servers
            .read()
            .expect("network server map lock")
            .get(origin)
            .cloned()
            .ok_or_else(|| NetError::HostUnreachable(origin.to_string()))
    }

    /// Configures the synthetic service latency every dispatch to this origin
    /// pays (slept outside all locks, so concurrent fetches overlap their waits).
    ///
    /// # Panics
    ///
    /// Panics if `origin_url` cannot be parsed or names an unregistered origin —
    /// latency is benchmark configuration, so a dangling origin is a setup bug.
    pub fn set_latency(&self, origin_url: &str, latency: Duration) {
        let origin = Origin::parse_url(origin_url)
            .expect("latency configuration requires a valid origin URL");
        self.handler(&origin)
            .expect("latency configuration requires a registered origin")
            .latency_ns
            .store(
                u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
    }

    /// The configured latency for an origin (zero when unset or unregistered).
    #[must_use]
    pub fn latency(&self, origin: &Origin) -> Duration {
        self.handler(origin).map_or(Duration::ZERO, |h| h.latency())
    }

    /// Estimated service time of one dispatch to `origin`, in nanoseconds: the
    /// larger of the configured latency and the EWMA of observed dispatch times
    /// (so a freshly configured latency counts before any sample exists, and
    /// expensive handlers count even with no configured latency). Zero when the
    /// origin is unregistered or nothing is known yet. Planners use this to
    /// decide whether fanning a batch of fetches out across threads can pay for
    /// the fan-out overhead.
    #[must_use]
    pub fn estimated_service_ns(&self, origin: &Origin) -> u64 {
        self.handler(origin).map_or(0, |h| {
            h.latency_ns
                .load(Ordering::Relaxed)
                .max(h.observed_ns.load(Ordering::Relaxed))
        })
    }

    /// `true` when a server is registered for the origin of `url`.
    #[must_use]
    pub fn knows(&self, url: &crate::url::Url) -> bool {
        self.servers
            .read()
            .expect("network server map lock")
            .contains_key(&url.origin())
    }

    /// Reserves a contiguous block of `count` sequence numbers and returns the
    /// first. A planner that fixes its request order up front (the pipelined
    /// subresource loader fixes *document* order) dispatches request *i* of its
    /// plan via [`SharedNetwork::dispatch_sequenced`] with `start + i`: the
    /// sequence-sorted log then reads in plan order no matter which worker
    /// finished first.
    pub fn reserve_sequences(&self, count: u64) -> u64 {
        self.sequence.fetch_add(count, Ordering::Relaxed)
    }

    /// Dispatches a request under a fresh sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HostUnreachable`] when no server is registered for the
    /// request's origin.
    pub fn dispatch(&self, request: Request) -> Result<Response, NetError> {
        let sequence = self.reserve_sequences(1);
        self.dispatch_sequenced(sequence, request)
    }

    /// Dispatches a request under a caller-reserved sequence number: sleeps the
    /// origin's simulated latency (outside all locks), takes the origin's handler
    /// mutex for exactly one `handle` call, and records the log entry under
    /// `sequence`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HostUnreachable`] when no server is registered for the
    /// request's origin. Unreachable dispatches are not logged (there is no
    /// response to record), matching the single-owner `Network`.
    pub fn dispatch_sequenced(
        &self,
        sequence: u64,
        request: Request,
    ) -> Result<Response, NetError> {
        let response = self.service(&request)?;
        self.record(
            sequence,
            LoggedRequest {
                method: request.method,
                url: request.url.clone(),
                cookie_names: request.cookie_names(),
                status: response.status.0,
            },
        );
        Ok(response)
    }

    /// Dispatches a request **without** recording a log entry: the speculative
    /// (prefetch) path. Latency, the origin's handler mutex and the EWMA all
    /// behave exactly as in [`dispatch_sequenced`](SharedNetwork::dispatch_sequenced);
    /// only the sequence-ordered log is untouched, so speculation cannot
    /// perturb what the oracle-equivalence harness compares. A consumed
    /// cache hit is logged at consumption time via
    /// [`record_cache_hit`](SharedNetwork::record_cache_hit).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HostUnreachable`] when no server is registered for
    /// the request's origin.
    pub fn dispatch_unlogged(&self, request: Request) -> Result<Response, NetError> {
        self.service(&request)
    }

    /// The shared dispatch machinery: consult the origin's fault plan, sleep
    /// the origin's simulated latency plus any injected slowdown (outside all
    /// locks), take the origin's handler mutex for exactly one `handle` call,
    /// and fold the observed service time into the planner EWMA — but **only
    /// for clean dispatches**: faulted or slowed dispatches never feed the
    /// EWMA, so injected chaos cannot poison the adaptive fan-out cutover.
    fn service(&self, request: &Request) -> Result<Response, NetError> {
        let origin = request.url.origin();
        // The map's read guard is dropped inside `handler()`: the sleep and the
        // handler call below hold only this origin's own mutex, so registration
        // writes and dispatches to other origins proceed unimpeded.
        let handler = self.handler(&origin)?;
        let fault = self.fault_decision(&origin);
        let latency = handler.latency();
        let service_start = std::time::Instant::now();
        let sleep_for = latency.saturating_add(Duration::from_nanos(fault.slow_ns));
        if !sleep_for.is_zero() {
            std::thread::sleep(sleep_for);
        }
        if fault.slow_ns > 0 {
            self.chaos.fault_slowdowns.fetch_add(1, Ordering::Relaxed);
        }
        match fault.outcome {
            FaultOutcome::Panic => {
                self.chaos.faults_injected.fetch_add(1, Ordering::Relaxed);
                // Deliberately *before* the handler lock: an injected panic
                // must not poison the origin's mutex, so the origin heals the
                // moment its schedule (or a retry) lets a dispatch through.
                panic!("injected fault: origin `{origin}` panicked by plan");
            }
            FaultOutcome::Timeout => {
                self.chaos.faults_injected.fetch_add(1, Ordering::Relaxed);
                let elapsed_ns =
                    u64::try_from(service_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                return Err(NetError::Timeout {
                    origin: origin.to_string(),
                    elapsed_ns,
                });
            }
            FaultOutcome::Proceed => {}
        }
        let response = {
            let mut server = handler.server.lock().expect("origin handler lock");
            server.handle(request)
        };
        // Fold the observed service time (sleep + handler) into the EWMA a
        // planner reads through `estimated_service_ns`: new = 7/8·old + 1/8·sample.
        if fault.is_clean() {
            let sample = u64::try_from(service_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let old = handler.observed_ns.load(Ordering::Relaxed);
            let next = if old == 0 {
                sample
            } else {
                old - old / 8 + sample / 8
            };
            handler.observed_ns.store(next, Ordering::Relaxed);
        }
        Ok(response)
    }

    /// Stores a response in the shared mediation-keyed cache, fetched under the
    /// plan summarized by `cookie_header` (the exact `Cookie` header value the
    /// monitor attached, empty string for none). `one_shot` entries (speculative
    /// prefetch) are consumed on first hit and need no `max-age`; persistent
    /// entries require an explicit `Cache-Control: max-age=N`. `no-store`
    /// responses are never stored, and neither is any response carrying
    /// `Set-Cookie` — per-recipient state must not enter a cache shared across
    /// sessions. Returns `true` when the response entered the cache.
    pub fn cache_store(
        &self,
        method: Method,
        url: &crate::url::Url,
        cookie_header: &str,
        response: Response,
        one_shot: bool,
    ) -> bool {
        self.cache.store(
            method,
            &url.to_string(),
            cookie_header,
            response,
            self.clock_now_ns(),
            one_shot,
        )
    }

    /// Looks up the shared cache for `(method, url)`, serving only the
    /// [`CacheLayers`] the caller opted into (an entry in a foreign layer is an
    /// ordinary miss, left in place), and **only** when `cookie_header` — the
    /// header the consuming request just mediated for itself — matches the plan
    /// the entry was stored under. On an in-layer mismatch the entry is
    /// discarded (stale plan) and `None` is returned, so a cached response can
    /// never substitute for a request the monitor would build differently
    /// today. Expired entries (`max-age` lifetime passed on the fabric's
    /// injectable clock) are discarded and counted the same way.
    #[must_use]
    pub fn cache_lookup(
        &self,
        method: Method,
        url: &crate::url::Url,
        cookie_header: &str,
        layers: CacheLayers,
    ) -> Option<CacheHit> {
        self.cache.lookup(
            method,
            &url.to_string(),
            cookie_header,
            self.clock_now_ns(),
            layers,
        )
    }

    /// Parks a speculative response for `url` as a one-shot cache entry (see
    /// [`cache_store`](SharedNetwork::cache_store)). Fresher speculation for
    /// the same URL overwrites a previous one-shot entry — but never a fresh
    /// persistent one. Returns `true` when the response entered the cache
    /// (`no-store` and `Set-Cookie`-bearing responses are refused).
    pub fn store_prefetched(
        &self,
        url: &crate::url::Url,
        cookie_header: &str,
        response: Response,
    ) -> bool {
        self.cache_store(Method::Get, url, cookie_header, response, true)
    }

    /// Consumes the cached response for a GET of `url` under the mediation plan
    /// `cookie_header` (see [`cache_lookup`](SharedNetwork::cache_lookup)),
    /// returning an owned clone of the entry. One-shot entries are consumed;
    /// persistent entries survive for the next hit.
    #[must_use]
    pub fn take_prefetched(&self, url: &crate::url::Url, cookie_header: &str) -> Option<Response> {
        self.cache_lookup(Method::Get, url, cookie_header, CacheLayers::BOTH)
            .map(|hit| Arc::try_unwrap(hit.response).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Logs a cache hit under the consuming request's reserved `sequence`,
    /// exactly as the live dispatch it replaced would have been logged. The
    /// hit is only legal when the mediation plan matched
    /// ([`cache_lookup`](SharedNetwork::cache_lookup)), so method, URL and
    /// cookie names here are byte-identical to the request a cache-free run
    /// would have put on the wire — which is what keeps the log equivalent.
    pub fn record_cache_hit(&self, sequence: u64, request: &Request, status: u16) {
        self.record(
            sequence,
            LoggedRequest {
                method: request.method,
                url: request.url.clone(),
                cookie_names: request.cookie_names(),
                status,
            },
        );
    }

    /// One-shot (speculative) cache entries consumed by a request whose
    /// mediation plan still matched.
    #[must_use]
    pub fn prefetch_hits(&self) -> u64 {
        self.cache.one_shot_hits()
    }

    /// Cache entries discarded because the consuming request's mediation plan
    /// no longer matched the one they were stored under.
    #[must_use]
    pub fn prefetch_stale_discards(&self) -> u64 {
        self.cache.stale_discards()
    }

    /// Parked speculative (one-shot) responses currently cached.
    #[must_use]
    pub fn prefetched_entries(&self) -> usize {
        self.cache.one_shot_len()
    }

    /// Persistent cache entries served (one-shot hits count separately under
    /// [`prefetch_hits`](SharedNetwork::prefetch_hits)).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache entries discarded at lookup because their `max-age` lifetime had
    /// passed on the fabric's clock.
    #[must_use]
    pub fn cache_expired(&self) -> u64 {
        self.cache.expired()
    }

    /// Cache entries evicted to keep a shard within capacity.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Successful cache stores (including overwrites), both layers.
    #[must_use]
    pub fn cache_stored(&self) -> u64 {
        self.cache.stored()
    }

    /// Duplicate plan slots served from a single dispatch by batch-level
    /// single-flight coalescing.
    #[must_use]
    pub fn cache_coalesced(&self) -> u64 {
        self.cache.coalesced()
    }

    /// Records `n` duplicate plan slots coalesced onto one dispatch.
    pub fn note_cache_coalesced(&self, n: u64) {
        self.cache.note_coalesced(n);
    }

    /// Total live cache entries, both layers.
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Appends a log entry to the stripe its sequence selects, evicting the
    /// oldest (lowest-sequence) entries in an amortized batch when the stripe is
    /// full — one `select_nth` scan pays for ~capacity/8 subsequent appends, the
    /// same scheme as the shared jar's eviction.
    fn record(&self, sequence: u64, entry: LoggedRequest) {
        let stripe = &self.stripes[(sequence as usize) & (self.stripes.len() - 1)];
        let mut entries = stripe.lock().expect("network log stripe lock");
        if self.stripe_capacity > 0 && entries.len() >= self.stripe_capacity {
            let batch = (self.stripe_capacity / 8).max(1).min(entries.len());
            let mut sequences: Vec<u64> = entries.iter().map(|e| e.sequence).collect();
            let (_, threshold, _) = sequences.select_nth_unstable(batch - 1);
            let threshold = *threshold;
            // Sequences are unique, so exactly `batch` entries are at or below the
            // threshold.
            entries.retain(|e| e.sequence > threshold);
            self.dropped.fetch_add(batch as u64, Ordering::Relaxed);
        }
        entries.push(SequencedEntry { sequence, entry });
    }

    /// The request log in global sequence order (the order dispatches were
    /// *planned*, which for un-reserved sequences is the order they started).
    /// Gathers one short-held lock per stripe, then sorts by sequence.
    #[must_use]
    pub fn log(&self) -> Vec<LoggedRequest> {
        let mut all: Vec<SequencedEntry> = Vec::with_capacity(self.log_len());
        for stripe in &self.stripes {
            all.extend(
                stripe
                    .lock()
                    .expect("network log stripe lock")
                    .iter()
                    .cloned(),
            );
        }
        all.sort_unstable_by_key(|e| e.sequence);
        all.into_iter().map(|e| e.entry).collect()
    }

    /// Number of retained log entries (each stripe lock held only to read a
    /// length).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("network log stripe lock").len())
            .sum()
    }

    /// Clears the request log (e.g. between experiment trials). The drop counter
    /// is *not* reset — like the audit ring's, it is cumulative.
    pub fn clear_log(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("network log stripe lock").clear();
        }
    }

    /// The log entries for requests sent to `host`, in sequence order.
    #[must_use]
    pub fn requests_to(&self, host: &str) -> Vec<LoggedRequest> {
        let mut matched: Vec<SequencedEntry> = Vec::new();
        for stripe in &self.stripes {
            matched.extend(
                stripe
                    .lock()
                    .expect("network log stripe lock")
                    .iter()
                    .filter(|e| e.entry.url.host().eq_ignore_ascii_case(host))
                    .cloned(),
            );
        }
        matched.sort_unstable_by_key(|e| e.sequence);
        matched.into_iter().map(|e| e.entry).collect()
    }

    /// Counts the log entries for requests sent to `host` without materializing
    /// them — the common count-only query of the defense experiments.
    #[must_use]
    pub fn count_requests_to(&self, host: &str) -> usize {
        self.stripes
            .iter()
            .map(|stripe| {
                stripe
                    .lock()
                    .expect("network log stripe lock")
                    .iter()
                    .filter(|e| e.entry.url.host().eq_ignore_ascii_case(host))
                    .count()
            })
            .sum()
    }

    /// Total bound on retained log entries (0 when unbounded).
    #[must_use]
    pub fn log_capacity(&self) -> usize {
        self.stripe_capacity * self.stripes.len()
    }

    /// Number of log entries dropped because their stripe was full.
    #[must_use]
    pub fn dropped_log_entries(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for SharedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedNetwork")
            .field(
                "origins",
                &self
                    .servers
                    .read()
                    .expect("network server map lock")
                    .keys()
                    .collect::<Vec<_>>(),
            )
            .field("logged_requests", &self.log_len())
            .field("dropped_log_entries", &self.dropped_log_entries())
            .field("fetch_pool_workers", &self.fetch_pool_workers())
            .field("prefetched_entries", &self.prefetched_entries())
            .field("prefetch_hits", &self.prefetch_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use crate::url::Url;
    use std::sync::Arc;

    fn echo_server(req: &Request) -> Response {
        Response::ok_text(format!("{} {}", req.method, req.url.path()))
    }

    #[test]
    fn dispatch_routes_by_origin_and_logs_in_sequence_order() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        net.register("http://b.example", |_req: &Request| {
            Response::error(StatusCode::FORBIDDEN, "nope")
        });
        let ra = net
            .dispatch(Request::get("http://a.example/x").unwrap())
            .unwrap();
        assert_eq!(ra.body, "GET /x");
        let rb = net
            .dispatch(Request::get("http://b.example/y").unwrap())
            .unwrap();
        assert_eq!(rb.status, StatusCode::FORBIDDEN);
        let log = net.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].url.host(), "a.example");
        assert_eq!(log[1].url.host(), "b.example");
        assert_eq!(net.count_requests_to("a.example"), 1);
        assert!(net
            .dispatch(Request::get("http://nowhere.example/").unwrap())
            .is_err());
        assert_eq!(net.log_len(), 2, "unreachable dispatches are not logged");
    }

    #[test]
    fn reserved_sequences_fix_log_order_regardless_of_dispatch_order() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        // Reserve a block, then dispatch in *reverse* plan order — the log still
        // reads in plan order.
        let base = net.reserve_sequences(4);
        for i in (0..4u64).rev() {
            net.dispatch_sequenced(
                base + i,
                Request::get(&format!("http://a.example/plan{i}")).unwrap(),
            )
            .unwrap();
        }
        let paths: Vec<String> = net.log().iter().map(|e| e.url.path().to_string()).collect();
        assert_eq!(paths, vec!["/plan0", "/plan1", "/plan2", "/plan3"]);
        // A later un-reserved dispatch sorts after the block.
        net.dispatch(Request::get("http://a.example/after").unwrap())
            .unwrap();
        assert_eq!(net.log().last().unwrap().url.path(), "/after");
    }

    #[test]
    fn concurrent_dispatches_to_distinct_origins_all_complete() {
        let net = Arc::new(SharedNetwork::new());
        for t in 0..4 {
            net.register(&format!("http://h{t}.example"), echo_server);
        }
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let net = Arc::clone(&net);
                scope.spawn(move || {
                    for i in 0..25 {
                        net.dispatch(Request::get(&format!("http://h{t}.example/{i}")).unwrap())
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(net.log_len(), 100);
        for t in 0..4 {
            assert_eq!(net.count_requests_to(&format!("h{t}.example")), 25);
        }
        // Sequence numbers are unique and the sorted log is strictly ordered per
        // origin (each thread dispatched its own origin sequentially).
        for t in 0..4 {
            let paths: Vec<String> = net
                .requests_to(&format!("h{t}.example"))
                .iter()
                .map(|e| e.url.path().to_string())
                .collect();
            let expected: Vec<String> = (0..25).map(|i| format!("/{i}")).collect();
            assert_eq!(paths, expected);
        }
    }

    #[test]
    fn log_capacity_drops_oldest_first_and_counts() {
        // One stripe, capacity 8, batch 1: the ninth entry evicts the oldest.
        let net = SharedNetwork::with_log_config(1, 8);
        assert_eq!(net.log_capacity(), 8);
        net.register("http://a.example", echo_server);
        for i in 0..12 {
            net.dispatch(Request::get(&format!("http://a.example/{i}")).unwrap())
                .unwrap();
        }
        assert_eq!(net.log_len(), 8);
        assert_eq!(net.dropped_log_entries(), 4);
        let first = net.log()[0].url.path().to_string();
        assert_eq!(first, "/4", "oldest entries dropped first");
        net.clear_log();
        assert_eq!(net.log_len(), 0);
        assert_eq!(net.dropped_log_entries(), 4, "drop counter is cumulative");
    }

    #[test]
    fn latency_is_paid_per_dispatch_and_survives_reregistration() {
        let net = SharedNetwork::new();
        net.register("http://slow.example", echo_server);
        net.set_latency("http://slow.example", Duration::from_millis(5));
        assert_eq!(
            net.latency(&Origin::parse_url("http://slow.example").unwrap()),
            Duration::from_millis(5)
        );
        let start = std::time::Instant::now();
        net.dispatch(Request::get("http://slow.example/").unwrap())
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        // Replacing the handler keeps the configured latency.
        net.register("http://slow.example", echo_server);
        assert_eq!(
            net.latency(&Origin::parse_url("http://slow.example").unwrap()),
            Duration::from_millis(5)
        );
        // Unregistered origins report zero latency.
        assert_eq!(
            net.latency(&Origin::parse_url("http://other.example").unwrap()),
            Duration::ZERO
        );
    }

    #[test]
    fn knows_reports_registration() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        assert!(net.knows(&Url::parse("http://a.example/x").unwrap()));
        assert!(!net.knows(&Url::parse("http://other.example/").unwrap()));
    }

    #[test]
    fn prefetch_cache_hits_only_on_a_matching_mediation_plan() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        let url = Url::parse("http://a.example/page").unwrap();
        let response = net
            .dispatch_unlogged(Request::get("http://a.example/page").unwrap())
            .unwrap();
        assert_eq!(net.log_len(), 0, "speculative dispatches are unlogged");
        net.store_prefetched(&url, "sid=abc", response);
        assert_eq!(net.prefetched_entries(), 1);

        // A different plan (the jar changed since the speculation) discards
        // the entry instead of serving it.
        assert!(net.take_prefetched(&url, "sid=zzz").is_none());
        assert_eq!(net.prefetch_stale_discards(), 1);
        assert_eq!(net.prefetched_entries(), 0, "stale entries are discarded");

        // A matching plan consumes the entry exactly once.
        let response = net
            .dispatch_unlogged(Request::get("http://a.example/page").unwrap())
            .unwrap();
        net.store_prefetched(&url, "sid=abc", response);
        let hit = net.take_prefetched(&url, "sid=abc").unwrap();
        assert_eq!(hit.body, "GET /page");
        assert_eq!(net.prefetch_hits(), 1);
        assert!(net.take_prefetched(&url, "sid=abc").is_none());
        assert_eq!(
            net.prefetch_stale_discards(),
            1,
            "a plain miss is not a stale discard"
        );
    }

    #[test]
    fn prefetch_cache_is_bounded_and_overwrites_per_url() {
        use crate::response_cache::RESPONSE_CACHE_CAPACITY;
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        let ok = Response::ok_text("x");
        let stored = 4 * RESPONSE_CACHE_CAPACITY;
        for i in 0..stored {
            let url = Url::parse(&format!("http://a.example/{i}")).unwrap();
            net.store_prefetched(&url, "", ok.clone());
        }
        assert!(
            net.prefetched_entries() <= RESPONSE_CACHE_CAPACITY,
            "the cache stays within its capacity bound"
        );
        assert_eq!(
            net.cache_evictions() + net.prefetched_entries() as u64,
            stored as u64,
            "every overflow store evicted exactly one entry"
        );
        // Re-storing a URL overwrites in place rather than duplicating or evicting.
        let url = Url::parse(&format!("http://a.example/{}", stored - 1)).unwrap();
        let evictions_before = net.cache_evictions();
        net.store_prefetched(&url, "a=1", ok.clone());
        net.store_prefetched(&url, "a=2", ok);
        assert_eq!(net.cache_evictions(), evictions_before);
        assert!(net.take_prefetched(&url, "a=2").is_some());
        assert!(net.take_prefetched(&url, "a=2").is_none());
    }

    #[test]
    fn prefetch_hits_log_under_their_reserved_sequence() {
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        let sequence = net.reserve_sequences(1);
        let request = Request::get("http://a.example/hit")
            .unwrap()
            .with_header("Cookie", "sid=abc");
        net.record_cache_hit(sequence, &request, 200);
        let log = net.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].url.path(), "/hit");
        assert_eq!(log[0].cookie_names, vec!["sid".to_string()]);
        assert_eq!(log[0].status, 200);
    }

    #[test]
    fn stateful_handlers_serialize_behind_their_origin_mutex() {
        let net = Arc::new(SharedNetwork::new());
        let mut hits = 0usize;
        net.register("http://count.example", move |_req: &Request| {
            hits += 1;
            Response::ok_text(hits.to_string())
        });
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let net = Arc::clone(&net);
                scope.spawn(move || {
                    for _ in 0..10 {
                        net.dispatch(Request::get("http://count.example/").unwrap())
                            .unwrap();
                    }
                });
            }
        });
        // 40 concurrent hits, each seeing a consistent counter: the final dispatch
        // observes 41.
        let last = net
            .dispatch(Request::get("http://count.example/").unwrap())
            .unwrap();
        assert_eq!(last.body, "41");
    }

    #[test]
    fn fault_storms_leave_the_service_time_ewma_untouched() {
        use crate::fault::FaultPlan;
        let net = SharedNetwork::new();
        net.register("http://a.example", echo_server);
        let origin = Origin::parse_url("http://a.example").unwrap();
        // Establish a clean baseline estimate.
        for i in 0..5 {
            net.dispatch(Request::get(&format!("http://a.example/warm{i}")).unwrap())
                .unwrap();
        }
        let baseline = net.estimated_service_ns(&origin);
        assert!(baseline > 0, "warm dispatches seeded the EWMA");
        // A storm of 5ms slowdowns and timeouts: every dispatch is faulted,
        // so *no* sample reaches the EWMA and the estimate stays exactly at
        // its pre-storm value — injected chaos cannot poison the planner's
        // fan-out cutover.
        net.inject_fault(
            "http://a.example",
            FaultPlan::new().slow_by(5_000_000).every_nth(2),
        );
        for i in 0..10 {
            let _ = net.dispatch(Request::get(&format!("http://a.example/storm{i}")).unwrap());
        }
        assert_eq!(
            net.estimated_service_ns(&origin),
            baseline,
            "faulted dispatches must be excluded from the EWMA"
        );
        assert_eq!(net.fault_slowdowns(), 10);
        assert_eq!(net.faults_injected(), 5);
        // Healing the origin resumes EWMA updates.
        net.clear_fault("http://a.example");
        net.dispatch(Request::get("http://a.example/healed").unwrap())
            .unwrap();
        assert!(net.estimated_service_ns(&origin) > 0);
    }
}
