//! Mediation-keyed shared response cache.
//!
//! ESCUDO's deployability argument rests on keeping mediation overhead small, and
//! the largest remaining hot-path cost is paying full wire latency for every repeat
//! navigation. This module caches *transport*, never *mediation*: entries are keyed
//! by `(method, url)` and validated against the **mediated cookie header** the
//! browser's reference monitor computed for the request. The mediation plan always
//! executes — a hit only skips the origin round-trip — so ESCUDO/SOP verdicts and
//! check/denial counts are cache-invariant by construction. A request whose
//! mediated header differs from the stored one (a different session, a revoked
//! cookie) misses and evicts the stale entry, so the cache fails closed.
//!
//! Layout follows the jar/engine precedent: a power-of-two shard array selected by
//! the high 32 bits of an FNV-1a hash, each shard a capacity-bounded LRU behind its
//! own mutex. Entries hold `Arc<Response>` so a hit is a refcount bump with zero
//! body clone. Freshness comes from `Cache-Control: max-age=N` metered against a
//! caller-supplied clock reading (the fabric injects its [`Clock`], so expiry is
//! exactly countable under a manual clock); `no-store` responses are never
//! inserted, and neither is any response carrying `Set-Cookie` — per shared-cache
//! semantics a response that sets cookies is per-recipient state, and storing it
//! would replay one session's credential into every later consumer whose mediated
//! header happens to match. Speculative prefetch rides the same structure as a
//! *one-shot* layer: one-shot entries are stored without requiring `max-age`
//! (falling back to [`ONE_SHOT_DEFAULT_TTL_NS`] so unconsumed speculation cannot
//! linger) and are removed on first hit, preserving the old `PrefetchCache`
//! contract. Lookups name the [`CacheLayers`] the caller opted into; an entry in
//! a foreign layer is an ordinary miss and stays in place for the sessions that
//! did opt in.
//!
//! [`Clock`]: escudo_core::tenant::Clock

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::message::{Method, Response};

/// Default total entry capacity of the fabric's shared cache.
pub const RESPONSE_CACHE_CAPACITY: usize = 128;

/// Default shard count (power of two, per the jar precedent).
pub const RESPONSE_CACHE_SHARDS: usize = 8;

/// Freshness bound for one-shot (prefetch) entries whose response declared no
/// `max-age`: speculation is meant to be consumed by the very next navigation,
/// so an unconsumed entry expires instead of lingering until LRU pressure.
pub const ONE_SHOT_DEFAULT_TTL_NS: u64 = 30_000_000_000;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Which layers of the cache a lookup may serve. A session consults only the
/// layers it opted into — speculative prefetch serves one-shot entries, the
/// persistent response cache serves `max-age` entries — and an entry in a
/// foreign layer is an ordinary miss, left untouched for the sessions that did
/// opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLayers {
    /// Serve (and consume) one-shot speculative-prefetch entries.
    pub one_shot: bool,
    /// Serve persistent `max-age` entries.
    pub persistent: bool,
}

impl CacheLayers {
    /// Both layers — the historical `take_prefetched` contract.
    pub const BOTH: CacheLayers = CacheLayers {
        one_shot: true,
        persistent: true,
    };
    /// Only one-shot speculative entries (a prefetch-only session).
    pub const ONE_SHOT: CacheLayers = CacheLayers {
        one_shot: true,
        persistent: false,
    };
    /// Only persistent entries (a cache-only session, or mediated XHR).
    pub const PERSISTENT: CacheLayers = CacheLayers {
        one_shot: false,
        persistent: true,
    };

    fn serves(self, one_shot: bool) -> bool {
        if one_shot {
            self.one_shot
        } else {
            self.persistent
        }
    }
}

/// One cached response plus the metadata needed to validate a hit.
#[derive(Debug)]
struct CacheEntry {
    /// The mediated `Cookie` header the response was fetched under.
    cookie_header: String,
    response: Arc<Response>,
    stored_at_ns: u64,
    /// Freshness lifetime: `max-age`, or [`ONE_SHOT_DEFAULT_TTL_NS`] for a
    /// one-shot entry whose response declared none.
    ttl_ns: u64,
    /// Prefetch layer: remove on first hit.
    one_shot: bool,
    /// Recency stamp for LRU eviction within the shard.
    touched: u64,
}

impl CacheEntry {
    fn is_expired(&self, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.stored_at_ns) >= self.ttl_ns
    }
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, CacheEntry>,
    /// Monotonic per-shard recency counter.
    tick: u64,
}

/// A successful cache lookup.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The cached response; cloning the `Arc` is the whole cost of the hit.
    pub response: Arc<Response>,
    /// `true` when this hit consumed a one-shot (prefetched) entry.
    pub one_shot: bool,
}

/// The sharded, capacity-bounded, mediation-keyed response cache.
#[derive(Debug)]
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    one_shot_hits: AtomicU64,
    stale: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    stored: AtomicU64,
    coalesced: AtomicU64,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` entries across `shard_count`
    /// shards. The shard count is rounded up to a power of two; capacity is split
    /// evenly across shards (rounding up).
    #[must_use]
    pub fn new(capacity: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1).next_power_of_two();
        let shard_capacity = capacity.max(1).div_ceil(shard_count);
        ResponseCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            one_shot_hits: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn key(method: Method, url: &str) -> String {
        format!("{method} {url}")
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let hash = fnv1a(key.as_bytes());
        let index = ((hash >> 32) as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Stores a response fetched under `cookie_header`, overwriting any previous
    /// entry for `(method, url)`. Returns `false` (and stores nothing) when the
    /// response refuses caching: `no-store` always wins, a response carrying
    /// `Set-Cookie` is never shared (it is per-recipient state — caching it
    /// would replay one session's credential into another session whose
    /// mediated header matches), and persistent entries additionally require an
    /// explicit `max-age` so dynamic pages never enter the shared cache.
    /// One-shot (prefetch) entries are stored without requiring `max-age`
    /// (falling back to [`ONE_SHOT_DEFAULT_TTL_NS`]) — but a one-shot store
    /// never downgrades a fresh persistent entry to consumed-on-first-hit.
    pub fn store(
        &self,
        method: Method,
        url: &str,
        cookie_header: &str,
        response: Response,
        now_ns: u64,
        one_shot: bool,
    ) -> bool {
        if response.headers.cache_no_store() || response.headers.get("Set-Cookie").is_some() {
            return false;
        }
        let max_age_ns = response
            .headers
            .cache_max_age()
            .map(|seconds| seconds.saturating_mul(1_000_000_000));
        let ttl_ns = match (max_age_ns, one_shot) {
            (Some(ttl), _) => ttl,
            (None, true) => ONE_SHOT_DEFAULT_TTL_NS,
            (None, false) => return false,
        };
        let key = ResponseCache::key(method, url);
        let mut shard = self.shard_for(&key).lock().expect("cache shard lock");
        if one_shot {
            if let Some(existing) = shard.entries.get(&key) {
                if !existing.one_shot && !existing.is_expired(now_ns) {
                    return false;
                }
            }
        }
        shard.tick += 1;
        let touched = shard.tick;
        let entry = CacheEntry {
            cookie_header: cookie_header.to_string(),
            response: Arc::new(response),
            stored_at_ns: now_ns,
            ttl_ns,
            one_shot,
            touched,
        };
        let overwrote = shard.entries.insert(key, entry).is_some();
        if !overwrote && shard.entries.len() > self.shard_capacity {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.entries.remove(&oldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stored.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Looks up `(method, url)` under the mediated `cookie_header`, serving
    /// only the `layers` the caller opted into.
    ///
    /// An expired entry is removed and counted (`None`). An entry in a layer
    /// the caller did not opt into is an ordinary miss — it stays in place,
    /// undiscarded, for the sessions that did opt in. An in-layer entry fetched
    /// under a *different* mediated header is removed and counted as stale
    /// (`None`) — the fail-closed path. A one-shot hit consumes the entry; a
    /// persistent hit bumps its recency. A plain miss touches no counter.
    pub fn lookup(
        &self,
        method: Method,
        url: &str,
        cookie_header: &str,
        now_ns: u64,
        layers: CacheLayers,
    ) -> Option<CacheHit> {
        if !layers.one_shot && !layers.persistent {
            return None;
        }
        let key = ResponseCache::key(method, url);
        let mut shard = self.shard_for(&key).lock().expect("cache shard lock");
        let entry = shard.entries.get(&key)?;
        if entry.is_expired(now_ns) {
            shard.entries.remove(&key);
            drop(shard);
            self.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !layers.serves(entry.one_shot) {
            return None;
        }
        if entry.cookie_header != cookie_header {
            shard.entries.remove(&key);
            drop(shard);
            self.stale.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if entry.one_shot {
            let entry = shard.entries.remove(&key).expect("entry present");
            drop(shard);
            self.one_shot_hits.fetch_add(1, Ordering::Relaxed);
            return Some(CacheHit {
                response: entry.response,
                one_shot: true,
            });
        }
        shard.tick += 1;
        let touched = shard.tick;
        let entry = shard.entries.get_mut(&key).expect("entry present");
        entry.touched = touched;
        let response = Arc::clone(&entry.response);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(CacheHit {
            response,
            one_shot: false,
        })
    }

    /// Total live entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").entries.len())
            .sum()
    }

    /// `true` when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live one-shot (prefetched) entries across all shards.
    #[must_use]
    pub fn one_shot_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .entries
                    .values()
                    .filter(|e| e.one_shot)
                    .count()
            })
            .sum()
    }

    /// Persistent-entry hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// One-shot (prefetch) hits served so far.
    #[must_use]
    pub fn one_shot_hits(&self) -> u64 {
        self.one_shot_hits.load(Ordering::Relaxed)
    }

    /// Entries discarded because the mediated cookie header changed.
    #[must_use]
    pub fn stale_discards(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Entries discarded at lookup because their `max-age` lifetime had passed.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep a shard within capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Successful stores (including overwrites).
    #[must_use]
    pub fn stored(&self) -> u64 {
        self.stored.load(Ordering::Relaxed)
    }

    /// Duplicate plan slots served from a single dispatch (batch single-flight).
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Records `n` duplicate plan slots coalesced onto one dispatch.
    pub fn note_coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cacheable(body: &str, max_age: u64) -> Response {
        Response::ok_text(body).with_max_age(max_age)
    }

    #[test]
    fn persistent_entries_require_an_explicit_max_age() {
        let cache = ResponseCache::new(8, 2);
        assert!(!cache.store(
            Method::Get,
            "http://a/x",
            "",
            Response::ok_text("dynamic"),
            0,
            false
        ));
        assert!(cache.store(
            Method::Get,
            "http://a/x",
            "",
            cacheable("static", 60),
            0,
            false
        ));
        assert_eq!(cache.len(), 1);
        let hit = cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::BOTH)
            .expect("hit");
        assert!(!hit.one_shot);
        assert_eq!(hit.response.body, "static");
        assert_eq!(cache.hits(), 1);
        // A hit leaves a persistent entry in place.
        assert!(cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::BOTH)
            .is_some());
    }

    #[test]
    fn no_store_is_honored_for_both_layers() {
        let cache = ResponseCache::new(8, 2);
        let secret = Response::ok_text("secret").with_max_age(60);
        let mut secret = secret;
        secret.headers.set("Cache-Control", "no-store, max-age=60");
        assert!(!cache.store(Method::Get, "http://a/s", "", secret.clone(), 0, false));
        assert!(!cache.store(Method::Get, "http://a/s", "", secret, 0, true));
        assert!(cache.is_empty());
    }

    #[test]
    fn one_shot_entries_store_without_max_age_and_vanish_on_first_hit() {
        let cache = ResponseCache::new(8, 2);
        assert!(cache.store(
            Method::Get,
            "http://a/p",
            "sid=1",
            Response::ok_text("pre"),
            0,
            true
        ));
        assert_eq!(cache.one_shot_len(), 1);
        let hit = cache
            .lookup(Method::Get, "http://a/p", "sid=1", 0, CacheLayers::BOTH)
            .expect("hit");
        assert!(hit.one_shot);
        assert_eq!(cache.one_shot_hits(), 1);
        assert!(cache
            .lookup(Method::Get, "http://a/p", "sid=1", 0, CacheLayers::BOTH)
            .is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn a_different_mediated_header_discards_the_entry() {
        let cache = ResponseCache::new(8, 2);
        cache.store(
            Method::Get,
            "http://a/x",
            "sid=alice",
            cacheable("a", 60),
            0,
            false,
        );
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/x",
                "sid=mallory",
                0,
                CacheLayers::BOTH
            )
            .is_none());
        assert_eq!(cache.stale_discards(), 1);
        // Fail closed: the entry is gone, even for the original header.
        assert!(cache
            .lookup(Method::Get, "http://a/x", "sid=alice", 0, CacheLayers::BOTH)
            .is_none());
        assert_eq!(cache.stale_discards(), 1);
    }

    #[test]
    fn ttl_expiry_is_exactly_countable() {
        let cache = ResponseCache::new(8, 2);
        cache.store(
            Method::Get,
            "http://a/x",
            "",
            cacheable("x", 5),
            1_000,
            false,
        );
        let just_before = 1_000 + 5_000_000_000 - 1;
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/x",
                "",
                just_before,
                CacheLayers::BOTH
            )
            .is_some());
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/x",
                "",
                just_before + 1,
                CacheLayers::BOTH
            )
            .is_none());
        assert_eq!(cache.expired(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn shards_stay_bounded_and_count_evictions() {
        let cache = ResponseCache::new(4, 4); // 1 entry per shard
        for i in 0..32 {
            let url = format!("http://a/{i}");
            cache.store(Method::Get, &url, "", cacheable("x", 60), 0, false);
        }
        assert!(cache.len() <= 4);
        assert_eq!(cache.evictions() + cache.len() as u64, 32);
        // Overwriting an existing URL does not evict.
        let survivor = (0..32)
            .map(|i| format!("http://a/{i}"))
            .find(|url| {
                cache
                    .lookup(Method::Get, url, "", 0, CacheLayers::BOTH)
                    .is_some()
            })
            .expect("some entry survives");
        let before = cache.evictions();
        cache.store(Method::Get, &survivor, "", cacheable("y", 60), 0, false);
        assert_eq!(cache.evictions(), before);
        assert_eq!(
            cache
                .lookup(Method::Get, &survivor, "", 0, CacheLayers::BOTH)
                .expect("overwritten entry")
                .response
                .body,
            "y"
        );
    }

    #[test]
    fn set_cookie_responses_are_refused_by_both_layers() {
        let cache = ResponseCache::new(8, 2);
        let mut tainted = cacheable("per-user", 60);
        tainted.headers.append("Set-Cookie", "token=alice");
        assert!(!cache.store(Method::Get, "http://a/t", "", tainted.clone(), 0, false));
        assert!(!cache.store(Method::Get, "http://a/t", "", tainted, 0, true));
        assert!(cache.is_empty());
        assert_eq!(cache.stored(), 0);
    }

    #[test]
    fn a_one_shot_store_never_downgrades_a_fresh_persistent_entry() {
        let cache = ResponseCache::new(8, 2);
        assert!(cache.store(
            Method::Get,
            "http://a/x",
            "",
            cacheable("keep", 60),
            0,
            false
        ));
        assert!(!cache.store(
            Method::Get,
            "http://a/x",
            "",
            Response::ok_text("spec"),
            0,
            true
        ));
        let hit = cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::BOTH)
            .expect("hit");
        assert!(!hit.one_shot, "the persistent entry survives");
        assert_eq!(hit.response.body, "keep");
        // Once the persistent entry's lifetime has passed, speculation may
        // replace it.
        let after_expiry = 60_000_000_001;
        assert!(cache.store(
            Method::Get,
            "http://a/x",
            "",
            Response::ok_text("spec"),
            after_expiry,
            true
        ));
        let hit = cache
            .lookup(
                Method::Get,
                "http://a/x",
                "",
                after_expiry,
                CacheLayers::BOTH,
            )
            .expect("hit");
        assert!(hit.one_shot);
    }

    #[test]
    fn ttl_less_one_shot_entries_expire_at_the_default_bound() {
        let cache = ResponseCache::new(8, 2);
        cache.store(
            Method::Get,
            "http://a/p",
            "",
            Response::ok_text("pre"),
            0,
            true,
        );
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/p",
                "",
                ONE_SHOT_DEFAULT_TTL_NS - 1,
                CacheLayers::BOTH
            )
            .is_some());
        cache.store(
            Method::Get,
            "http://a/p",
            "",
            Response::ok_text("pre"),
            0,
            true,
        );
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/p",
                "",
                ONE_SHOT_DEFAULT_TTL_NS,
                CacheLayers::BOTH
            )
            .is_none());
        assert_eq!(cache.expired(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn lookups_serve_only_opted_in_layers_and_leave_the_rest_in_place() {
        let cache = ResponseCache::new(8, 2);
        cache.store(
            Method::Get,
            "http://a/p",
            "",
            Response::ok_text("pre"),
            0,
            true,
        );
        cache.store(
            Method::Get,
            "http://a/x",
            "",
            cacheable("per", 60),
            0,
            false,
        );
        // A persistent-only consumer must not consume the one-shot entry…
        assert!(cache
            .lookup(Method::Get, "http://a/p", "", 0, CacheLayers::PERSISTENT)
            .is_none());
        assert_eq!(cache.one_shot_len(), 1, "the one-shot entry stays");
        // …and a one-shot-only consumer must not serve the persistent one.
        assert!(cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::ONE_SHOT)
            .is_none());
        assert_eq!(cache.len(), 2);
        // A foreign-layer miss is not a discard, even under a foreign header.
        assert!(cache
            .lookup(
                Method::Get,
                "http://a/p",
                "sid=other",
                0,
                CacheLayers::PERSISTENT
            )
            .is_none());
        assert_eq!(cache.stale_discards(), 0);
        // Each entry still serves its own layer.
        assert!(cache
            .lookup(Method::Get, "http://a/p", "", 0, CacheLayers::ONE_SHOT)
            .is_some());
        assert!(cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::PERSISTENT)
            .is_some());
    }

    #[test]
    fn methods_key_separately() {
        let cache = ResponseCache::new(8, 2);
        cache.store(
            Method::Get,
            "http://a/x",
            "",
            cacheable("get", 60),
            0,
            false,
        );
        assert!(cache
            .lookup(Method::Head, "http://a/x", "", 0, CacheLayers::BOTH)
            .is_none());
        assert!(cache
            .lookup(Method::Get, "http://a/x", "", 0, CacheLayers::BOTH)
            .is_some());
    }
}
