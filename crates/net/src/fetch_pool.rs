//! The persistent fetch worker pool: parked OS threads the fabric reuses across
//! page loads.
//!
//! PR 4's pipelined loader fanned each page's pre-mediated fetches out over
//! *scoped threads spawned per page load*. Spawning costs tens of microseconds a
//! thread, which is why the loader needed a 300µs adaptive cutover before fanning
//! out at all — the fan-out machinery had to pay for itself on every single page.
//! This module replaces the per-page spawn with a **fabric-owned pool of parked
//! workers**:
//!
//! * a plain `Mutex<VecDeque>` job queue plus a `Condvar` the idle workers park
//!   on — submission is a short lock hold and one notify per woken worker,
//!   microseconds instead of thread spawns;
//! * workers are spawned **lazily** the first time a batch actually needs them
//!   (fabrics that never fan out — most unit tests — never start a thread) and
//!   then persist, parked, for the fabric's lifetime;
//! * the pool grows on demand up to [`MAX_POOL_WORKERS`], sized by each batch's
//!   requested parallelism with [`std::thread::available_parallelism`] as the
//!   floor for the first growth step;
//! * the **submitting thread is always worker 0**: it drains its own batch
//!   alongside the pool, so a batch never deadlocks waiting for pool capacity
//!   and the sequential semantics of a one-worker batch are exactly the inline
//!   dispatch path;
//! * dropping the pool (i.e. the fabric) shuts the workers down and joins them.
//!
//! # Tickets, not jobs
//!
//! The shared queue holds **claim tickets**, not individual fetches. A batch of
//! `n` requests submitted at parallelism `w` enqueues `w - 1` tickets; whichever
//! worker pops a ticket *drains that batch's own pending list* until it is
//! empty. Concurrency on one batch is therefore **exactly bounded** by its
//! ticket count plus the submitting thread — a fully grown pool cannot gang up
//! on a narrow batch — and submission wakes only as many workers as there are
//! tickets (no thundering herd on small batches).
//!
//! A panicking origin handler is contained per request: the unwind is caught,
//! the request's result slot is completed with [`NetError::FetchPanicked`], and
//! both the ticket and the worker keep going — one poisoned handler fails its
//! own fetch, never hangs the navigating thread or kills the pool.
//!
//! Because submission is cheap and the workers are already warm, "overlap the
//! next navigation with the current fan-out" is now just another batch
//! submission — and the loader's adaptive cutover dropped from 300µs to 150µs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use crate::error::NetError;
use crate::message::{Request, Response};
use crate::shared_network::SharedNetwork;

/// Hard bound on pool threads, far above any realistic fan-out parallelism — a
/// backstop against a caller requesting absurd batch widths, not a tuning knob.
pub const MAX_POOL_WORKERS: usize = 64;

/// One submitted batch: the pending requests any ticket holder may claim, the
/// per-request result slots, and the rendezvous the submitter waits on.
///
/// The batch holds the fabric **weakly**: the pool lives *inside* the fabric,
/// so a worker must never be the one to drop the fabric's last strong
/// reference — that would run the pool's own `Drop` (which joins the workers)
/// on a worker thread. The submitter blocked in `dispatch_batch` holds a
/// strong reference for the whole batch, so the upgrade only fails for work
/// orphaned by a vanished submitter, which completes with an error.
struct BatchWork {
    fabric: Weak<SharedNetwork>,
    base: u64,
    /// Requests not yet claimed, as `(plan_index, request)`. One short lock
    /// hold per claim; ticket holders loop until this is empty.
    pending: Mutex<VecDeque<(usize, Request)>>,
    slots: Vec<Mutex<Option<Result<Response, NetError>>>>,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    finished: Condvar,
}

impl BatchWork {
    fn new(fabric: &Arc<SharedNetwork>, base: u64, requests: Vec<Request>) -> Arc<Self> {
        let count = requests.len();
        Arc::new(BatchWork {
            fabric: Arc::downgrade(fabric),
            base,
            pending: Mutex::new(requests.into_iter().enumerate().collect()),
            slots: (0..count).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(count),
            done: Mutex::new(false),
            finished: Condvar::new(),
        })
    }

    /// Drains the batch's pending list: claim a request, dispatch it under its
    /// pre-reserved sequence, record the outcome, repeat until no claims
    /// remain. Run by every ticket holder *and* the submitting thread, so the
    /// batch's concurrency is exactly `tickets + 1`. Returns how many requests
    /// this call dispatched.
    ///
    /// A panic inside the origin's handler is caught here, per request: the
    /// slot is completed with [`NetError::FetchPanicked`] and the drain
    /// continues — one poisoned handler cannot hang the batch or kill a pool
    /// worker.
    fn drain(&self) -> u64 {
        let mut ran = 0;
        loop {
            let claimed = self.pending.lock().expect("batch pending list").pop_front();
            let Some((index, request)) = claimed else {
                return ran;
            };
            ran += 1;
            let outcome = match self.fabric.upgrade() {
                Some(fabric) => {
                    let outcome = dispatch_containing_panics(&fabric, self.base, index, request);
                    // The strong reference must die *before* the completion
                    // signal: once `complete` wakes the submitter, the
                    // fabric's owner may drop it at any moment, and this
                    // thread must not be holding the last count when it does.
                    drop(fabric);
                    outcome
                }
                None => Err(NetError::HostUnreachable(format!(
                    "network fabric dropped before dispatching {}",
                    request.url
                ))),
            };
            self.complete(index, outcome);
        }
    }

    fn complete(&self, index: usize, outcome: Result<Response, NetError>) {
        *self.slots[index].lock().expect("batch result slot") = Some(outcome);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("batch done flag") = true;
            self.finished.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("batch done flag");
        while !*done {
            done = self.finished.wait(done).expect("batch done flag");
        }
    }

    fn take_results(&self) -> Vec<Result<Response, NetError>> {
        self.slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("batch result slot")
                    .take()
                    .expect("every request of a finished batch has a result")
            })
            .collect()
    }
}

/// Dispatches batch request `index` under its pre-reserved sequence, catching
/// a panicking origin handler and converting it into
/// [`NetError::FetchPanicked`]. Shared by the pooled drain and the inline
/// (parallelism ≤ 1) path so a batch's panic semantics do not depend on which
/// side of the fan-out cutover it landed on.
fn dispatch_containing_panics(
    fabric: &SharedNetwork,
    base: u64,
    index: usize,
    request: Request,
) -> Result<Response, NetError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fabric.dispatch_sequenced(base + index as u64, request)
    }))
    .unwrap_or_else(|_| {
        Err(NetError::FetchPanicked(format!(
            "origin handler panicked on batch request {index}"
        )))
    })
}

/// The state workers share: the ticket queue and the park/wake machinery.
/// Workers hold an `Arc` of *this* (never of the fabric), and batches hold the
/// fabric only weakly, so the fabric → pool → worker ownership chain stays
/// acyclic and the fabric's last strong reference can never die on a worker
/// thread.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Parked workers wait here; submission notifies one worker per ticket.
    available: Condvar,
    /// Requests dispatched by pool workers (not the helping submitter) —
    /// observability.
    executed: AtomicU64,
}

struct PoolQueue {
    /// Claim tickets: popping one commits the worker to draining that batch.
    tickets: VecDeque<Arc<BatchWork>>,
    shutdown: bool,
}

/// The persistent, lazily-grown worker pool one [`SharedNetwork`] owns.
pub(crate) struct FetchPool {
    shared: Arc<PoolShared>,
    /// Spawned worker handles; joined on drop. The `Mutex` also serializes
    /// growth, so two racing `ensure_workers` calls cannot over-spawn.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Lock-free mirror of `handles.len()` for the stats path.
    workers: AtomicUsize,
}

impl FetchPool {
    pub(crate) fn new() -> Self {
        FetchPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    tickets: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
                executed: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            workers: AtomicUsize::new(0),
        }
    }

    /// Parked worker threads currently alive.
    pub(crate) fn workers(&self) -> usize {
        self.workers.load(Ordering::Relaxed)
    }

    /// Requests dispatched by pool workers (the helping submitter's share is
    /// not counted here — it never crossed a thread).
    pub(crate) fn jobs_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Grows the pool to at least `wanted` workers (capped at
    /// [`MAX_POOL_WORKERS`]). Existing parked workers are reused; only the
    /// shortfall is spawned. First growth also covers the machine's available
    /// parallelism so a warm pool serves later, wider batches without a second
    /// growth stop.
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_WORKERS);
        if self.workers() >= wanted {
            return;
        }
        let mut handles = self.handles.lock().expect("pool handle list");
        let target = wanted
            .max(
                std::thread::available_parallelism()
                    .map_or(1, std::num::NonZeroUsize::get)
                    .min(MAX_POOL_WORKERS),
            )
            .max(handles.len());
        while handles.len() < target {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name("escudo-fetch".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn fetch worker"),
            );
        }
        self.workers.store(handles.len(), Ordering::Relaxed);
    }

    /// Enqueues `tickets` claim tickets for `work` under one lock hold and
    /// wakes exactly that many parked workers — a small batch on a fully grown
    /// pool does not stampede every thread.
    fn submit(&self, work: &Arc<BatchWork>, tickets: usize) {
        {
            let mut queue = self.shared.queue.lock().expect("fetch pool queue");
            queue.tickets.extend((0..tickets).map(|_| Arc::clone(work)));
        }
        for _ in 0..tickets {
            self.shared.available.notify_one();
        }
    }
}

impl Drop for FetchPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("fetch pool queue");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.lock().expect("pool handle list").drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for FetchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchPool")
            .field("workers", &self.workers())
            .field("jobs_executed", &self.jobs_executed())
            .finish()
    }
}

/// A worker: park on the condvar, drain a batch per claimed ticket, exit on
/// shutdown. Pending tickets are drained even after shutdown is flagged, so a
/// fabric dropped mid-batch still completes the batch before the join.
fn worker_loop(shared: &PoolShared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("fetch pool queue");
            loop {
                if let Some(work) = queue.tickets.pop_front() {
                    break work;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("fetch pool queue");
            }
        };
        let ran = work.drain();
        shared.executed.fetch_add(ran, Ordering::Relaxed);
    }
}

impl SharedNetwork {
    /// Dispatches a pre-planned batch of requests — request `i` under sequence
    /// `base + i` — across the fabric's persistent worker pool, returning the
    /// outcomes in plan order.
    ///
    /// `parallelism` bounds how many fetches run concurrently, **exactly**: the
    /// batch enqueues `parallelism - 1` claim tickets and only ticket holders
    /// (plus the calling thread) can claim its requests, so even a fully grown
    /// pool cannot run a narrow batch wider than asked. At `1` the batch
    /// dispatches inline on the calling thread in plan order — byte-identical
    /// to the sequential oracle, no pool involvement. Above `1`, the calling
    /// thread submits the tickets, drains its own batch alongside the woken
    /// workers (it is worker 0, as the scoped-thread loader's navigating
    /// thread was), and parks on the batch's condvar only while ticket holders
    /// finish the tail.
    ///
    /// # Errors
    ///
    /// Each slot carries its own [`NetError`] — one unreachable origin fails
    /// that fetch, and a panicking origin handler fails its own slot with
    /// [`NetError::FetchPanicked`]; neither hangs or fails the batch.
    pub fn dispatch_batch(
        self: &Arc<Self>,
        base: u64,
        requests: Vec<Request>,
        parallelism: usize,
    ) -> Vec<Result<Response, NetError>> {
        let count = requests.len();
        if count == 0 {
            return Vec::new();
        }
        let parallelism = parallelism.min(count);
        if parallelism <= 1 {
            // Same panic containment as the pooled drain: whether a batch lands
            // on the inline or the fanned-out side of the cutover must not
            // change what a poisoned handler does to the navigating thread.
            return requests
                .into_iter()
                .enumerate()
                .map(|(i, request)| dispatch_containing_panics(self, base, i, request))
                .collect();
        }
        let work = BatchWork::new(self, base, requests);
        // The submitter is one of the `parallelism` lanes; ticket the rest.
        self.pool().ensure_workers(parallelism - 1);
        self.pool().submit(&work, parallelism - 1);
        work.drain();
        work.wait();
        work.take_results()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use std::time::Duration;

    fn echo(req: &Request) -> Response {
        Response::ok_text(req.url.path().to_string())
    }

    fn fabric_with_origins(n: usize, latency: Duration) -> Arc<SharedNetwork> {
        let fabric = Arc::new(SharedNetwork::new());
        for k in 0..n {
            let origin = format!("http://h{k}.example");
            fabric.register(&origin, echo);
            fabric.set_latency(&origin, latency);
        }
        fabric
    }

    fn plan(fabric: &Arc<SharedNetwork>, count: usize, origins: usize) -> (u64, Vec<Request>) {
        let requests: Vec<Request> = (0..count)
            .map(|i| Request::get(&format!("http://h{}.example/r{i}", i % origins)).unwrap())
            .collect();
        (fabric.reserve_sequences(count as u64), requests)
    }

    #[test]
    fn batch_results_and_log_read_in_plan_order() {
        let fabric = fabric_with_origins(4, Duration::ZERO);
        let (base, requests) = plan(&fabric, 8, 4);
        let results = fabric.dispatch_batch(base, requests, 4);
        assert_eq!(results.len(), 8);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().body, format!("/r{i}"));
        }
        let paths: Vec<String> = fabric.log().iter().map(|e| e.url.path().into()).collect();
        let expected: Vec<String> = (0..8).map(|i| format!("/r{i}")).collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn parallelism_one_never_touches_the_pool() {
        let fabric = fabric_with_origins(2, Duration::ZERO);
        let (base, requests) = plan(&fabric, 4, 2);
        let results = fabric.dispatch_batch(base, requests, 1);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(fabric.fetch_pool_workers(), 0, "inline path spawns nothing");
    }

    #[test]
    fn workers_persist_across_batches() {
        let fabric = fabric_with_origins(4, Duration::from_micros(50));
        for _ in 0..3 {
            let (base, requests) = plan(&fabric, 8, 4);
            let results = fabric.dispatch_batch(base, requests, 4);
            assert!(results.iter().all(Result::is_ok));
        }
        let after_first = fabric.fetch_pool_workers();
        assert!(after_first >= 3, "pool retains its parked workers");
        let (base, requests) = plan(&fabric, 8, 4);
        fabric.dispatch_batch(base, requests, 4);
        assert_eq!(
            fabric.fetch_pool_workers(),
            after_first,
            "a later batch reuses the parked workers instead of spawning"
        );
        assert_eq!(fabric.log_len(), 32);
    }

    #[test]
    fn unreachable_origins_fail_their_slot_not_the_batch() {
        let fabric = fabric_with_origins(2, Duration::ZERO);
        let base = fabric.reserve_sequences(3);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://nowhere.example/b").unwrap(),
            Request::get("http://h1.example/c").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 2);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::HostUnreachable(_))));
        assert!(results[2].is_ok());
        // The unreachable dispatch is not logged, matching dispatch_sequenced.
        assert_eq!(fabric.log_len(), 2);
    }

    #[test]
    fn panicking_handlers_fail_their_slot_and_spare_the_pool() {
        let fabric = fabric_with_origins(1, Duration::ZERO);
        fabric.register("http://boom.example", |req: &Request| -> Response {
            panic!("handler exploded on {}", req.url.path())
        });
        let base = fabric.reserve_sequences(4);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://boom.example/b").unwrap(),
            Request::get("http://h0.example/c").unwrap(),
            Request::get("http://boom.example/d").unwrap(),
        ];
        // The batch completes — no hang — with the panicking slots failed.
        let results = fabric.dispatch_batch(base, requests, 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::FetchPanicked(_))));
        assert!(results[2].is_ok());
        assert!(matches!(results[3], Err(NetError::FetchPanicked(_))));
        // The pool survived: a later healthy batch over the same workers runs
        // to completion. (The panicked origin's handler mutex is poisoned, but
        // the pool and every other origin are unaffected.)
        let (base, requests) = plan(&fabric, 4, 1);
        let results = fabric.dispatch_batch(base, requests, 3);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn inline_batches_contain_panics_like_pooled_ones() {
        // Parallelism 1 takes the inline path; a panicking handler must fail
        // its own slot there too — which side of the fan-out cutover a batch
        // lands on must not decide between a soft error and a crashed
        // navigating thread.
        let fabric = fabric_with_origins(1, Duration::ZERO);
        fabric.register("http://boom.example", |_req: &Request| -> Response {
            panic!("inline handler exploded")
        });
        let base = fabric.reserve_sequences(3);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://boom.example/b").unwrap(),
            Request::get("http://h0.example/c").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 1);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::FetchPanicked(_))));
        assert!(results[2].is_ok());
        assert_eq!(fabric.fetch_pool_workers(), 0, "inline path spawns nothing");
    }

    #[test]
    fn parallelism_strictly_bounds_batch_concurrency() {
        // A grown pool (4 workers) must not gang up on a width-2 batch: with
        // a handler counting concurrent entries, the high-water mark stays
        // ≤ 2 even though more workers are parked and hungry.
        let fabric = Arc::new(SharedNetwork::new());
        let in_flight = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        for k in 0..4 {
            let in_flight = Arc::clone(&in_flight);
            let high_water = Arc::clone(&high_water);
            fabric.register(&format!("http://h{k}.example"), move |req: &Request| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                high_water.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(200));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Response::ok_text(req.url.path().to_string())
            });
        }
        // Grow the pool to 4 with a wide batch first.
        let (base, requests) = plan(&fabric, 8, 4);
        fabric.dispatch_batch(base, requests, 5);
        assert!(fabric.fetch_pool_workers() >= 4);
        // Now a narrow batch: the bound must hold despite the grown pool.
        high_water.store(0, Ordering::SeqCst);
        let (base, requests) = plan(&fabric, 12, 4);
        let results = fabric.dispatch_batch(base, requests, 2);
        assert!(results.iter().all(Result::is_ok));
        assert!(
            high_water.load(Ordering::SeqCst) <= 2,
            "width-2 batch ran {} fetches concurrently",
            high_water.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let fabric = fabric_with_origins(4, Duration::from_micros(100));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let fabric = Arc::clone(&fabric);
                scope.spawn(move || {
                    let (base, requests) = plan(&fabric, 8, 4);
                    let results = fabric.dispatch_batch(base, requests, 4);
                    assert!(results.iter().all(Result::is_ok));
                });
            }
        });
        assert_eq!(fabric.log_len(), 24);
        assert!(fabric.fetch_pool_workers() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn status_codes_travel_through_the_pool() {
        let fabric = Arc::new(SharedNetwork::new());
        fabric.register("http://deny.example", |_req: &Request| {
            Response::error(StatusCode::FORBIDDEN, "no")
        });
        let base = fabric.reserve_sequences(2);
        let requests = vec![
            Request::get("http://deny.example/x").unwrap(),
            Request::get("http://deny.example/y").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 2);
        for result in results {
            assert_eq!(result.unwrap().status, StatusCode::FORBIDDEN);
        }
    }
}
