//! The persistent fetch worker pool: parked OS threads the fabric reuses across
//! page loads, scheduled over a **two-lane priority queue**.
//!
//! PR 4's pipelined loader fanned each page's pre-mediated fetches out over
//! *scoped threads spawned per page load*. Spawning costs tens of microseconds a
//! thread, which is why the loader needed a 300µs adaptive cutover before fanning
//! out at all — the fan-out machinery had to pay for itself on every single page.
//! This module replaces the per-page spawn with a **fabric-owned pool of parked
//! workers**:
//!
//! * a lane-split job queue plus a `Condvar` the idle workers park on —
//!   submission is a short lock hold and one notify per woken worker,
//!   microseconds instead of thread spawns;
//! * workers are spawned **lazily** the first time a batch actually needs them
//!   (fabrics that never fan out — most unit tests — never start a thread) and
//!   then persist, parked, for the fabric's lifetime;
//! * the pool grows on demand up to [`MAX_POOL_WORKERS`], sized by each batch's
//!   requested parallelism with [`std::thread::available_parallelism`] as the
//!   floor for the first growth step;
//! * the **submitting thread is always worker 0**: it drains its own batch
//!   alongside the pool, so a batch never deadlocks waiting for pool capacity
//!   and the sequential semantics of a one-worker batch are exactly the inline
//!   dispatch path;
//! * dropping the pool (i.e. the fabric) shuts the workers down and joins them.
//!
//! # Priority lanes
//!
//! The queue is no longer strict FIFO. Every ticket carries a [`Priority`] lane
//! tag and workers serve lanes in order — [`Priority::Navigation`] first, then
//! [`Priority::Bulk`], then [`Priority::Background`] — so a navigation-critical
//! batch submitted behind a sibling session's deep bulk-image storm does not
//! wait its full FIFO turn. Two mechanisms keep the lanes honest:
//!
//! * **Preemption.** A worker draining a bulk or background batch polls a
//!   lock-free "navigation tickets queued" signal between requests; when
//!   navigation work is waiting, it parks its unfinished batch back at the
//!   *front* of its lane (preserving that batch's exact concurrency bound) and
//!   goes to claim the navigation ticket instead. A batch is only ever
//!   preempted at request boundaries — an in-flight fetch always completes.
//! * **Anti-starvation credit.** After [`NAVIGATION_CREDIT`] consecutive
//!   navigation tickets handed out while lower-lane work waited, the queue
//!   serves one bulk/background ticket regardless, so a navigation storm can
//!   slow the bulk lanes but never halt them.
//!
//! # Tickets, not jobs
//!
//! The shared queue holds **claim tickets**, not individual fetches. A batch of
//! `n` requests submitted at parallelism `w` enqueues `w - 1` tickets; whichever
//! worker pops a ticket *drains that batch's own pending list* until it is
//! empty. Concurrency on one batch is therefore **exactly bounded** by its
//! ticket count plus the submitting thread — a fully grown pool cannot gang up
//! on a narrow batch — and submission wakes only as many workers as there are
//! tickets (no thundering herd on small batches).
//!
//! A panicking origin handler is contained per request: the unwind is caught,
//! the request's result slot is completed with [`NetError::FetchPanicked`], and
//! both the ticket and the worker keep going — one poisoned handler fails its
//! own fetch, never hangs the navigating thread or kills the pool.
//!
//! Because submission is cheap and the workers are already warm, "overlap the
//! next navigation with the current fan-out" is now just another batch
//! submission: [`SharedNetwork::submit_background_batch`] enqueues speculative
//! prefetch work on the background lane and returns immediately, so the
//! navigating thread fans the current page out while the pool fills the
//! prefetch cache behind it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use crate::error::NetError;
use crate::fault::{dispatch_slot_resilient, BatchBudget, FetchPolicy};
use crate::message::{Request, Response};
use crate::shared_network::SharedNetwork;

/// Hard bound on pool threads, far above any realistic fan-out parallelism — a
/// backstop against a caller requesting absurd batch widths, not a tuning knob.
pub const MAX_POOL_WORKERS: usize = 64;

/// Anti-starvation credit: after this many consecutive navigation tickets
/// served while bulk/background work waited, one lower-lane ticket is served
/// even though navigation work remains queued.
pub const NAVIGATION_CREDIT: u32 = 4;

/// The scheduling lane a fetch batch rides through the pool's priority queue.
///
/// Lanes are served strictly in order — `Navigation`, then `Bulk`, then
/// `Background` — subject to the [`NAVIGATION_CREDIT`] anti-starvation valve,
/// and a worker draining a lower lane yields to freshly queued navigation work
/// at the next request boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Navigation-critical work: the document fetch's render-blocking
    /// companions (stylesheets, scripts). Preempts the lower lanes.
    Navigation,
    /// Ordinary page fan-out — images and other non-blocking subresources.
    #[default]
    Bulk,
    /// Speculative work (prefetch). Runs only when nothing better is queued
    /// and yields to navigation work between requests.
    Background,
}

/// One slot's final outcome plus the retries that slot consumed.
type SlotResult = (Result<Response, NetError>, u32);

/// One submitted batch: the pending requests any ticket holder may claim, the
/// per-request result slots, and the rendezvous the submitter waits on.
///
/// The batch holds the fabric **weakly**: the pool lives *inside* the fabric,
/// so a worker must never be the one to drop the fabric's last strong
/// reference — that would run the pool's own `Drop` (which joins the workers)
/// on a worker thread. The submitter blocked in `dispatch_batch` holds a
/// strong reference for the whole batch, so the upgrade only fails for work
/// orphaned by a vanished submitter, which completes with an error.
struct BatchWork {
    fabric: Weak<SharedNetwork>,
    /// Sequence base for the request log; `None` for speculative batches,
    /// which dispatch unlogged so prefetch cannot perturb the sequence-ordered
    /// log the oracle-equivalence harness compares.
    base: Option<u64>,
    /// Requests not yet claimed, as `(slot, sequence_offset, request)`. The
    /// slot indexes the result array; the sequence offset is added to `base`
    /// for the log. They coincide for ordinary batches, but a single-flight
    /// plan with coalesced duplicates dispatches only the first occurrences —
    /// each still under its *own* plan position's sequence, so the sorted log
    /// keeps exact plan order. One short lock hold per claim; ticket holders
    /// loop until this is empty.
    pending: Mutex<VecDeque<(usize, usize, Request)>>,
    /// Per-request outcome plus the retries that slot consumed (always 0
    /// without a retry budget).
    slots: Vec<Mutex<Option<SlotResult>>>,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    finished: Condvar,
    /// The batch's shared retry budget; `None` runs the bare single-attempt
    /// dispatch (the disabled-policy fast path — no request clones, no
    /// breaker lookups).
    budget: Option<Arc<BatchBudget>>,
}

impl BatchWork {
    fn new(
        fabric: &Arc<SharedNetwork>,
        base: Option<u64>,
        requests: Vec<Request>,
        budget: Option<Arc<BatchBudget>>,
    ) -> Arc<Self> {
        let entries = requests.into_iter().enumerate().collect();
        BatchWork::with_offsets(fabric, base, entries, budget)
    }

    /// A batch whose requests carry explicit sequence offsets (`base + offset`
    /// in the log) decoupled from their result-slot positions — the
    /// single-flight loader dispatches a plan with duplicate slots removed,
    /// leaving offset gaps the coalesced hits fill in at consumption time.
    fn with_offsets(
        fabric: &Arc<SharedNetwork>,
        base: Option<u64>,
        entries: Vec<(usize, Request)>,
        budget: Option<Arc<BatchBudget>>,
    ) -> Arc<Self> {
        let count = entries.len();
        Arc::new(BatchWork {
            fabric: Arc::downgrade(fabric),
            base,
            pending: Mutex::new(
                entries
                    .into_iter()
                    .enumerate()
                    .map(|(slot, (offset, request))| (slot, offset, request))
                    .collect(),
            ),
            slots: (0..count).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(count),
            // An empty batch is born finished; `wait` must not park on it.
            done: Mutex::new(count == 0),
            finished: Condvar::new(),
            budget,
        })
    }

    /// Claims and dispatches **one** pending request. Returns `false` when no
    /// claim remained — the batch's pending list is empty (though ticket
    /// holders may still be finishing claims made earlier).
    ///
    /// A panic inside the origin's handler is caught here, per request: the
    /// slot is completed with [`NetError::FetchPanicked`] and the caller keeps
    /// going — one poisoned handler cannot hang the batch or kill a pool
    /// worker.
    fn drain_one(&self) -> bool {
        let claimed = self.pending.lock().expect("batch pending list").pop_front();
        let Some((index, offset, request)) = claimed else {
            return false;
        };
        let outcome = match self.fabric.upgrade() {
            Some(fabric) => {
                let outcome = match &self.budget {
                    Some(budget) => {
                        dispatch_slot_resilient(&fabric, self.base, offset, request, budget)
                    }
                    None => (
                        dispatch_containing_panics(&fabric, self.base, offset, request),
                        0,
                    ),
                };
                // The strong reference must die *before* the completion
                // signal: once `complete` wakes the submitter, the
                // fabric's owner may drop it at any moment, and this
                // thread must not be holding the last count when it does.
                drop(fabric);
                outcome
            }
            None => (
                Err(NetError::HostUnreachable(format!(
                    "network fabric dropped before dispatching {}",
                    request.url
                ))),
                0,
            ),
        };
        self.complete(index, outcome);
        true
    }

    /// Drains the batch's pending list to empty. Run by the submitting thread
    /// (and by workers holding navigation tickets, which are never preempted),
    /// so the batch's concurrency is exactly `tickets + 1`. Returns how many
    /// requests this call dispatched.
    fn drain(&self) -> u64 {
        let mut ran = 0;
        while self.drain_one() {
            ran += 1;
        }
        ran
    }

    /// `true` while unclaimed requests remain — the preemption path only parks
    /// a ticket that still has work behind it.
    fn has_pending(&self) -> bool {
        !self.pending.lock().expect("batch pending list").is_empty()
    }

    fn complete(&self, index: usize, outcome: (Result<Response, NetError>, u32)) {
        *self.slots[index].lock().expect("batch result slot") = Some(outcome);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("batch done flag") = true;
            self.finished.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("batch done flag");
        while !*done {
            done = self.finished.wait(done).expect("batch done flag");
        }
    }

    fn take_results(&self) -> Vec<(Result<Response, NetError>, u32)> {
        self.slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("batch result slot")
                    .take()
                    .expect("every request of a finished batch has a result")
            })
            .collect()
    }
}

/// Dispatches batch request `index` — under its pre-reserved sequence when the
/// batch is logged, or unlogged for speculative batches — catching a panicking
/// origin handler and converting it into [`NetError::FetchPanicked`]. Shared by
/// the pooled drain, the inline (parallelism ≤ 1) path and the resilient retry
/// loop ([`crate::fault`]) so a batch's panic semantics do not depend on which
/// side of the fan-out cutover it landed on.
pub(crate) fn dispatch_containing_panics(
    fabric: &SharedNetwork,
    base: Option<u64>,
    index: usize,
    request: Request,
) -> Result<Response, NetError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match base {
        Some(base) => fabric.dispatch_sequenced(base + index as u64, request),
        None => fabric.dispatch_unlogged(request),
    }))
    .unwrap_or_else(|_| {
        Err(NetError::FetchPanicked(format!(
            "origin handler panicked on batch request {index}"
        )))
    })
}

/// The state workers share: the lane-split ticket queue and the park/wake
/// machinery. Workers hold an `Arc` of *this* (never of the fabric), and
/// batches hold the fabric only weakly, so the fabric → pool → worker
/// ownership chain stays acyclic and the fabric's last strong reference can
/// never die on a worker thread.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Parked workers wait here; submission notifies one worker per ticket.
    available: Condvar,
    /// Requests dispatched by pool workers (not the helping submitter) —
    /// observability.
    executed: AtomicU64,
    /// Unclaimed navigation tickets, mirrored outside the queue lock: the
    /// signal bulk/background drains poll between requests to decide whether
    /// to yield. Mutated only under the queue lock; read lock-free.
    navigation_queued: AtomicUsize,
    /// Times a worker parked a bulk/background ticket mid-batch to pick up
    /// queued navigation work.
    preemptions: AtomicU64,
}

struct PoolQueue {
    /// Claim tickets per lane: popping one commits the worker to draining that
    /// batch (until preempted, for the lower lanes).
    navigation: VecDeque<Arc<BatchWork>>,
    bulk: VecDeque<Arc<BatchWork>>,
    background: VecDeque<Arc<BatchWork>>,
    /// Consecutive navigation tickets handed out while lower-lane work waited;
    /// at [`NAVIGATION_CREDIT`] the next pop serves a lower lane instead.
    navigation_streak: u32,
    shutdown: bool,
}

impl PoolQueue {
    fn lane_mut(&mut self, lane: Priority) -> &mut VecDeque<Arc<BatchWork>> {
        match lane {
            Priority::Navigation => &mut self.navigation,
            Priority::Bulk => &mut self.bulk,
            Priority::Background => &mut self.background,
        }
    }

    /// Pops the next ticket by lane priority — navigation first, bulk, then
    /// background — with the anti-starvation credit letting one lower-lane
    /// ticket through after every [`NAVIGATION_CREDIT`] navigation pops made
    /// while lower-lane work sat waiting.
    fn pop_ticket(&mut self) -> Option<(Arc<BatchWork>, Priority)> {
        let lower_waiting = !self.bulk.is_empty() || !self.background.is_empty();
        if !self.navigation.is_empty()
            && (!lower_waiting || self.navigation_streak < NAVIGATION_CREDIT)
        {
            self.navigation_streak += 1;
            return self
                .navigation
                .pop_front()
                .map(|w| (w, Priority::Navigation));
        }
        self.navigation_streak = 0;
        if let Some(work) = self.bulk.pop_front() {
            return Some((work, Priority::Bulk));
        }
        if let Some(work) = self.background.pop_front() {
            return Some((work, Priority::Background));
        }
        self.navigation
            .pop_front()
            .map(|w| (w, Priority::Navigation))
    }
}

/// The persistent, lazily-grown worker pool one [`SharedNetwork`] owns.
pub(crate) struct FetchPool {
    shared: Arc<PoolShared>,
    /// Spawned worker handles; joined on drop. The `Mutex` also serializes
    /// growth, so two racing `ensure_workers` calls cannot over-spawn.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Lock-free mirror of `handles.len()` for the stats path.
    workers: AtomicUsize,
}

impl FetchPool {
    pub(crate) fn new() -> Self {
        FetchPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    navigation: VecDeque::new(),
                    bulk: VecDeque::new(),
                    background: VecDeque::new(),
                    navigation_streak: 0,
                    shutdown: false,
                }),
                available: Condvar::new(),
                executed: AtomicU64::new(0),
                navigation_queued: AtomicUsize::new(0),
                preemptions: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            workers: AtomicUsize::new(0),
        }
    }

    /// Parked worker threads currently alive.
    pub(crate) fn workers(&self) -> usize {
        self.workers.load(Ordering::Relaxed)
    }

    /// Requests dispatched by pool workers (the helping submitter's share is
    /// not counted here — it never crossed a thread).
    pub(crate) fn jobs_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Times a worker parked a bulk/background batch mid-drain to serve queued
    /// navigation work.
    pub(crate) fn preemptions(&self) -> u64 {
        self.shared.preemptions.load(Ordering::Relaxed)
    }

    /// Grows the pool to at least `wanted` workers (capped at
    /// [`MAX_POOL_WORKERS`]). Existing parked workers are reused; only the
    /// shortfall is spawned. First growth also covers the machine's available
    /// parallelism so a warm pool serves later, wider batches without a second
    /// growth stop.
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_WORKERS);
        if self.workers() >= wanted {
            return;
        }
        let mut handles = self.handles.lock().expect("pool handle list");
        let target = wanted
            .max(
                std::thread::available_parallelism()
                    .map_or(1, std::num::NonZeroUsize::get)
                    .min(MAX_POOL_WORKERS),
            )
            .max(handles.len());
        while handles.len() < target {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name("escudo-fetch".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn fetch worker"),
            );
        }
        self.workers.store(handles.len(), Ordering::Relaxed);
    }

    /// Enqueues `tickets` claim tickets for `work` on `priority`'s lane under
    /// one lock hold and wakes exactly that many parked workers — a small
    /// batch on a fully grown pool does not stampede every thread.
    fn submit(&self, work: &Arc<BatchWork>, tickets: usize, priority: Priority) {
        {
            let mut queue = self.shared.queue.lock().expect("fetch pool queue");
            queue
                .lane_mut(priority)
                .extend((0..tickets).map(|_| Arc::clone(work)));
            if priority == Priority::Navigation {
                // Mirrored under the queue lock so pops (which decrement, also
                // under the lock) can never race it below zero.
                self.shared
                    .navigation_queued
                    .fetch_add(tickets, Ordering::Relaxed);
            }
        }
        for _ in 0..tickets {
            self.shared.available.notify_one();
        }
    }
}

impl Drop for FetchPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("fetch pool queue");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.lock().expect("pool handle list").drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for FetchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchPool")
            .field("workers", &self.workers())
            .field("jobs_executed", &self.jobs_executed())
            .field("preemptions", &self.preemptions())
            .finish()
    }
}

/// A worker: park on the condvar, drain a batch per claimed ticket, exit on
/// shutdown. Pending tickets are drained even after shutdown is flagged, so a
/// fabric dropped mid-batch still completes the batch before the join.
///
/// Bulk and background tickets are drained **preemptibly**: between requests
/// the worker polls the navigation-queued signal, and when navigation work is
/// waiting it parks the unfinished batch back at the front of its lane (the
/// batch's concurrency bound is a ticket count, so parking the ticket keeps
/// the bound exact) and loops around — the lane order then hands it the
/// navigation ticket. Navigation tickets drain to completion.
fn worker_loop(shared: &PoolShared) {
    loop {
        let (work, lane) = {
            let mut queue = shared.queue.lock().expect("fetch pool queue");
            loop {
                if let Some((work, lane)) = queue.pop_ticket() {
                    if lane == Priority::Navigation {
                        shared.navigation_queued.fetch_sub(1, Ordering::Relaxed);
                    }
                    break (work, lane);
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("fetch pool queue");
            }
        };
        let mut ran = 0;
        while work.drain_one() {
            ran += 1;
            if lane != Priority::Navigation
                && shared.navigation_queued.load(Ordering::Relaxed) > 0
                && work.has_pending()
            {
                {
                    let mut queue = shared.queue.lock().expect("fetch pool queue");
                    queue.lane_mut(lane).push_front(Arc::clone(&work));
                }
                shared.preemptions.fetch_add(1, Ordering::Relaxed);
                shared.available.notify_one();
                break;
            }
        }
        shared.executed.fetch_add(ran, Ordering::Relaxed);
    }
}

/// An in-flight speculative batch on the background lane, created by
/// [`SharedNetwork::submit_background_batch`]. The submitter is **not** a
/// drain lane while the batch is in flight — the whole point is overlapping
/// the speculation with other work — and collects the outcomes by joining.
pub struct BackgroundBatch {
    work: Arc<BatchWork>,
}

impl BackgroundBatch {
    /// Blocks until every request has an outcome and returns them in plan
    /// order. The joining thread helps drain whatever the pool has not claimed
    /// yet, so a background batch completes even on a fabric whose pool is
    /// saturated with higher-priority work.
    #[must_use]
    pub fn join(self) -> Vec<Result<Response, NetError>> {
        self.work.drain();
        self.work.wait();
        self.work
            .take_results()
            .into_iter()
            .map(|(outcome, _retries)| outcome)
            .collect()
    }
}

impl std::fmt::Debug for BackgroundBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundBatch")
            .field("requests", &self.work.slots.len())
            .finish()
    }
}

impl SharedNetwork {
    /// Dispatches a pre-planned batch of requests — request `i` under sequence
    /// `base + i` — across the fabric's persistent worker pool, returning the
    /// outcomes in plan order. `priority` picks the queue lane the batch's
    /// claim tickets ride (see [`Priority`]); it never changes the results,
    /// only how soon a loaded pool gets to them.
    ///
    /// `parallelism` bounds how many fetches run concurrently, **exactly**: the
    /// batch enqueues `parallelism - 1` claim tickets and only ticket holders
    /// (plus the calling thread) can claim its requests, so even a fully grown
    /// pool cannot run a narrow batch wider than asked. At `1` the batch
    /// dispatches inline on the calling thread in plan order — byte-identical
    /// to the sequential oracle, no pool involvement. Above `1`, the calling
    /// thread submits the tickets, drains its own batch alongside the woken
    /// workers (it is worker 0, as the scoped-thread loader's navigating
    /// thread was), and parks on the batch's condvar only while ticket holders
    /// finish the tail.
    ///
    /// # Errors
    ///
    /// Each slot carries its own [`NetError`] — one unreachable origin fails
    /// that fetch, and a panicking origin handler fails its own slot with
    /// [`NetError::FetchPanicked`]; neither hangs or fails the batch.
    pub fn dispatch_batch(
        self: &Arc<Self>,
        base: u64,
        requests: Vec<Request>,
        parallelism: usize,
        priority: Priority,
    ) -> Vec<Result<Response, NetError>> {
        self.dispatch_batch_with_policy(
            base,
            requests,
            parallelism,
            priority,
            &FetchPolicy::disabled(),
        )
        .into_iter()
        .map(|(outcome, _retries)| outcome)
        .collect()
    }

    /// [`dispatch_batch`](SharedNetwork::dispatch_batch) through the resilient
    /// fetch path: each slot runs the bounded-retry loop of
    /// [`crate::fault`] (breaker admission, verbatim re-dispatch of the
    /// already-mediated request, virtual backoff metered against the batch's
    /// shared deadline budget on the fabric clock) and reports how many
    /// retries it consumed alongside its outcome. A disabled policy is the
    /// exact bare path — no budget allocation, no request clones.
    ///
    /// # Errors
    ///
    /// Each slot carries its own final [`NetError`] exactly as in
    /// [`dispatch_batch`](SharedNetwork::dispatch_batch), plus
    /// [`NetError::Timeout`] for exhausted injected faults and
    /// [`NetError::CircuitOpen`] when the origin's breaker refused admission.
    pub fn dispatch_batch_with_policy(
        self: &Arc<Self>,
        base: u64,
        requests: Vec<Request>,
        parallelism: usize,
        priority: Priority,
        policy: &FetchPolicy,
    ) -> Vec<(Result<Response, NetError>, u32)> {
        let entries = requests.into_iter().enumerate().collect();
        self.dispatch_batch_offsets_with_policy(base, entries, parallelism, priority, policy)
    }

    /// [`dispatch_batch_with_policy`](SharedNetwork::dispatch_batch_with_policy)
    /// with explicit per-request sequence offsets: entry `(offset, request)`
    /// logs under `base + offset`, and results come back in entry order. The
    /// single-flight loader uses this to dispatch a plan whose duplicate slots
    /// were coalesced away — the surviving first occurrences keep their exact
    /// plan positions in the sequence-sorted log, and the skipped duplicates'
    /// sequences are filled by [`record_cache_hit`](SharedNetwork::record_cache_hit)
    /// at fan-out time.
    ///
    /// # Errors
    ///
    /// Per-slot, exactly as
    /// [`dispatch_batch_with_policy`](SharedNetwork::dispatch_batch_with_policy).
    pub fn dispatch_batch_offsets_with_policy(
        self: &Arc<Self>,
        base: u64,
        entries: Vec<(usize, Request)>,
        parallelism: usize,
        priority: Priority,
        policy: &FetchPolicy,
    ) -> Vec<(Result<Response, NetError>, u32)> {
        let count = entries.len();
        if count == 0 {
            return Vec::new();
        }
        let budget = (!policy.is_disabled()).then(|| Arc::new(BatchBudget::new(self, *policy)));
        let parallelism = parallelism.min(count);
        if parallelism <= 1 {
            // Same panic containment as the pooled drain: whether a batch lands
            // on the inline or the fanned-out side of the cutover must not
            // change what a poisoned handler does to the navigating thread.
            return entries
                .into_iter()
                .map(|(offset, request)| match &budget {
                    Some(budget) => {
                        dispatch_slot_resilient(self, Some(base), offset, request, budget)
                    }
                    None => (
                        dispatch_containing_panics(self, Some(base), offset, request),
                        0,
                    ),
                })
                .collect();
        }
        let work = BatchWork::with_offsets(self, Some(base), entries, budget);
        // The submitter is one of the `parallelism` lanes; ticket the rest.
        self.pool().ensure_workers(parallelism - 1);
        self.pool().submit(&work, parallelism - 1, priority);
        work.drain();
        work.wait();
        work.take_results()
    }

    /// Submits an **unlogged** speculative batch on the background lane and
    /// returns immediately — the prefetch side of the scheduler. The requests
    /// dispatch with full latency and panic containment but are never recorded
    /// in the sequence-ordered log (a consumed prefetch hit is logged at
    /// consumption time instead), so speculation cannot perturb what the
    /// oracle-equivalence harness compares.
    ///
    /// Unlike [`dispatch_batch`](SharedNetwork::dispatch_batch), the caller is
    /// not a drain lane: all `parallelism` tickets go to the pool so the
    /// speculation overlaps whatever the caller does next. Collect the
    /// outcomes with [`BackgroundBatch::join`].
    pub fn submit_background_batch(
        self: &Arc<Self>,
        requests: Vec<Request>,
        parallelism: usize,
    ) -> BackgroundBatch {
        self.submit_background_batch_with_policy(requests, parallelism, &FetchPolicy::disabled())
    }

    /// [`submit_background_batch`](SharedNetwork::submit_background_batch)
    /// through the resilient fetch path: each speculative slot spends the
    /// bounded retry budget of `policy` (breaker admission, virtual backoff
    /// against the batch deadline), raising prefetch hit rates under flaky
    /// origins. Speculation stays unlogged either way — retries happen on the
    /// background lane and only a consumed hit ever reaches the log — so the
    /// oracle-equivalence harness sees nothing new.
    pub fn submit_background_batch_with_policy(
        self: &Arc<Self>,
        requests: Vec<Request>,
        parallelism: usize,
        policy: &FetchPolicy,
    ) -> BackgroundBatch {
        let count = requests.len();
        let budget = (!policy.is_disabled()).then(|| Arc::new(BatchBudget::new(self, *policy)));
        let work = BatchWork::new(self, None, requests, budget);
        if count > 0 {
            let tickets = parallelism.clamp(1, count);
            self.pool().ensure_workers(tickets);
            self.pool().submit(&work, tickets, Priority::Background);
        }
        BackgroundBatch { work }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use std::time::Duration;

    fn echo(req: &Request) -> Response {
        Response::ok_text(req.url.path().to_string())
    }

    fn fabric_with_origins(n: usize, latency: Duration) -> Arc<SharedNetwork> {
        let fabric = Arc::new(SharedNetwork::new());
        for k in 0..n {
            let origin = format!("http://h{k}.example");
            fabric.register(&origin, echo);
            fabric.set_latency(&origin, latency);
        }
        fabric
    }

    fn plan(fabric: &Arc<SharedNetwork>, count: usize, origins: usize) -> (u64, Vec<Request>) {
        let requests: Vec<Request> = (0..count)
            .map(|i| Request::get(&format!("http://h{}.example/r{i}", i % origins)).unwrap())
            .collect();
        (fabric.reserve_sequences(count as u64), requests)
    }

    #[test]
    fn batch_results_and_log_read_in_plan_order() {
        let fabric = fabric_with_origins(4, Duration::ZERO);
        let (base, requests) = plan(&fabric, 8, 4);
        let results = fabric.dispatch_batch(base, requests, 4, Priority::Bulk);
        assert_eq!(results.len(), 8);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().body, format!("/r{i}"));
        }
        let paths: Vec<String> = fabric.log().iter().map(|e| e.url.path().into()).collect();
        let expected: Vec<String> = (0..8).map(|i| format!("/r{i}")).collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn parallelism_one_never_touches_the_pool() {
        let fabric = fabric_with_origins(2, Duration::ZERO);
        let (base, requests) = plan(&fabric, 4, 2);
        let results = fabric.dispatch_batch(base, requests, 1, Priority::Navigation);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(fabric.fetch_pool_workers(), 0, "inline path spawns nothing");
    }

    #[test]
    fn workers_persist_across_batches() {
        let fabric = fabric_with_origins(4, Duration::from_micros(50));
        for _ in 0..3 {
            let (base, requests) = plan(&fabric, 8, 4);
            let results = fabric.dispatch_batch(base, requests, 4, Priority::Bulk);
            assert!(results.iter().all(Result::is_ok));
        }
        let after_first = fabric.fetch_pool_workers();
        assert!(after_first >= 3, "pool retains its parked workers");
        let (base, requests) = plan(&fabric, 8, 4);
        fabric.dispatch_batch(base, requests, 4, Priority::Bulk);
        assert_eq!(
            fabric.fetch_pool_workers(),
            after_first,
            "a later batch reuses the parked workers instead of spawning"
        );
        assert_eq!(fabric.log_len(), 32);
    }

    #[test]
    fn unreachable_origins_fail_their_slot_not_the_batch() {
        let fabric = fabric_with_origins(2, Duration::ZERO);
        let base = fabric.reserve_sequences(3);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://nowhere.example/b").unwrap(),
            Request::get("http://h1.example/c").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 2, Priority::Bulk);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::HostUnreachable(_))));
        assert!(results[2].is_ok());
        // The unreachable dispatch is not logged, matching dispatch_sequenced.
        assert_eq!(fabric.log_len(), 2);
    }

    #[test]
    fn panicking_handlers_fail_their_slot_and_spare_the_pool() {
        let fabric = fabric_with_origins(1, Duration::ZERO);
        fabric.register("http://boom.example", |req: &Request| -> Response {
            panic!("handler exploded on {}", req.url.path())
        });
        let base = fabric.reserve_sequences(4);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://boom.example/b").unwrap(),
            Request::get("http://h0.example/c").unwrap(),
            Request::get("http://boom.example/d").unwrap(),
        ];
        // The batch completes — no hang — with the panicking slots failed.
        let results = fabric.dispatch_batch(base, requests, 3, Priority::Bulk);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::FetchPanicked(_))));
        assert!(results[2].is_ok());
        assert!(matches!(results[3], Err(NetError::FetchPanicked(_))));
        // The pool survived: a later healthy batch over the same workers runs
        // to completion. (The panicked origin's handler mutex is poisoned, but
        // the pool and every other origin are unaffected.)
        let (base, requests) = plan(&fabric, 4, 1);
        let results = fabric.dispatch_batch(base, requests, 3, Priority::Bulk);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn inline_batches_contain_panics_like_pooled_ones() {
        // Parallelism 1 takes the inline path; a panicking handler must fail
        // its own slot there too — which side of the fan-out cutover a batch
        // lands on must not decide between a soft error and a crashed
        // navigating thread.
        let fabric = fabric_with_origins(1, Duration::ZERO);
        fabric.register("http://boom.example", |_req: &Request| -> Response {
            panic!("inline handler exploded")
        });
        let base = fabric.reserve_sequences(3);
        let requests = vec![
            Request::get("http://h0.example/a").unwrap(),
            Request::get("http://boom.example/b").unwrap(),
            Request::get("http://h0.example/c").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 1, Priority::Bulk);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NetError::FetchPanicked(_))));
        assert!(results[2].is_ok());
        assert_eq!(fabric.fetch_pool_workers(), 0, "inline path spawns nothing");
    }

    #[test]
    fn parallelism_strictly_bounds_batch_concurrency() {
        // A grown pool (4 workers) must not gang up on a width-2 batch: with
        // a handler counting concurrent entries, the high-water mark stays
        // ≤ 2 even though more workers are parked and hungry.
        let fabric = Arc::new(SharedNetwork::new());
        let in_flight = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        for k in 0..4 {
            let in_flight = Arc::clone(&in_flight);
            let high_water = Arc::clone(&high_water);
            fabric.register(&format!("http://h{k}.example"), move |req: &Request| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                high_water.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(200));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Response::ok_text(req.url.path().to_string())
            });
        }
        // Grow the pool to 4 with a wide batch first.
        let (base, requests) = plan(&fabric, 8, 4);
        fabric.dispatch_batch(base, requests, 5, Priority::Bulk);
        assert!(fabric.fetch_pool_workers() >= 4);
        // Now a narrow batch: the bound must hold despite the grown pool.
        high_water.store(0, Ordering::SeqCst);
        let (base, requests) = plan(&fabric, 12, 4);
        let results = fabric.dispatch_batch(base, requests, 2, Priority::Bulk);
        assert!(results.iter().all(Result::is_ok));
        assert!(
            high_water.load(Ordering::SeqCst) <= 2,
            "width-2 batch ran {} fetches concurrently",
            high_water.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let fabric = fabric_with_origins(4, Duration::from_micros(100));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let fabric = Arc::clone(&fabric);
                scope.spawn(move || {
                    let (base, requests) = plan(&fabric, 8, 4);
                    let results = fabric.dispatch_batch(base, requests, 4, Priority::Bulk);
                    assert!(results.iter().all(Result::is_ok));
                });
            }
        });
        assert_eq!(fabric.log_len(), 24);
        assert!(fabric.fetch_pool_workers() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn status_codes_travel_through_the_pool() {
        let fabric = Arc::new(SharedNetwork::new());
        fabric.register("http://deny.example", |_req: &Request| {
            Response::error(StatusCode::FORBIDDEN, "no")
        });
        let base = fabric.reserve_sequences(2);
        let requests = vec![
            Request::get("http://deny.example/x").unwrap(),
            Request::get("http://deny.example/y").unwrap(),
        ];
        let results = fabric.dispatch_batch(base, requests, 2, Priority::Bulk);
        for result in results {
            assert_eq!(result.unwrap().status, StatusCode::FORBIDDEN);
        }
    }

    #[test]
    fn navigation_tickets_pop_before_queued_bulk_with_anti_starvation_credit() {
        // Pure queue-policy test: queue 6 navigation tickets behind 2 bulk and
        // 1 background ticket. Pops must serve navigation first, let exactly
        // one bulk ticket through after NAVIGATION_CREDIT consecutive
        // navigation pops, and drain background last.
        let fabric = fabric_with_origins(1, Duration::ZERO);
        let nav = BatchWork::new(&fabric, Some(0), Vec::new(), None);
        let bulk = BatchWork::new(&fabric, Some(0), Vec::new(), None);
        let background = BatchWork::new(&fabric, None, Vec::new(), None);
        let mut queue = PoolQueue {
            navigation: (0..6).map(|_| Arc::clone(&nav)).collect(),
            bulk: (0..2).map(|_| Arc::clone(&bulk)).collect(),
            background: VecDeque::from([Arc::clone(&background)]),
            navigation_streak: 0,
            shutdown: false,
        };
        let mut order = Vec::new();
        while let Some((_, lane)) = queue.pop_ticket() {
            order.push(lane);
        }
        use Priority::{Background, Bulk, Navigation};
        assert_eq!(
            order,
            vec![
                Navigation, Navigation, Navigation, Navigation, // credit exhausted
                Bulk,       // anti-starvation valve fires
                Navigation, Navigation, // remaining navigation work
                Bulk, Background, // lanes drain in priority order
            ]
        );
    }

    #[test]
    fn background_batches_dispatch_unlogged_and_join_in_plan_order() {
        let fabric = fabric_with_origins(2, Duration::from_micros(50));
        let requests: Vec<Request> = (0..4)
            .map(|i| Request::get(&format!("http://h{}.example/bg{i}", i % 2)).unwrap())
            .collect();
        let batch = fabric.submit_background_batch(requests, 2);
        let results = batch.join();
        assert_eq!(results.len(), 4);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().body, format!("/bg{i}"));
        }
        // Speculative dispatches never touch the sequence-ordered log.
        assert_eq!(fabric.log_len(), 0);
        // An empty batch joins immediately instead of parking forever.
        assert!(fabric
            .submit_background_batch(Vec::new(), 4)
            .join()
            .is_empty());
    }

    #[test]
    fn resilient_batches_retry_faulted_slots_and_keep_the_log_in_plan_order() {
        use crate::fault::FaultPlan;
        let fabric = fabric_with_origins(2, Duration::ZERO);
        // The first dispatch to h0 times out once; a single retry heals it.
        fabric.inject_fault("http://h0.example", FaultPlan::new().fail_first(1));
        let (base, requests) = plan(&fabric, 6, 2);
        let policy = FetchPolicy::default().with_max_retries(2);
        let results = fabric.dispatch_batch_with_policy(base, requests, 3, Priority::Bulk, &policy);
        assert!(results.iter().all(|(outcome, _)| outcome.is_ok()));
        let total_retries: u32 = results.iter().map(|(_, retries)| *retries).sum();
        assert_eq!(total_retries, 1, "exactly the one faulted slot retried");
        assert_eq!(fabric.faults_injected(), 1);
        assert_eq!(fabric.retry_attempts(), 1);
        assert_eq!(fabric.retry_successes(), 1);
        // The healed retry logged under its originally reserved sequence, so
        // the sequence-sorted log still reads in exact plan order.
        let paths: Vec<String> = fabric.log().iter().map(|e| e.url.path().into()).collect();
        let expected: Vec<String> = (0..6).map(|i| format!("/r{i}")).collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn queued_navigation_work_preempts_a_draining_bulk_batch() {
        // Saturate the pool with one wide, slow bulk batch from a helper
        // thread, then submit a navigation batch: workers finishing a bulk
        // request must park the bulk ticket and serve navigation first. The
        // preemption counter is the witness; the bulk batch still completes
        // (anti-starvation is about fairness, completion is structural — the
        // submitter always drains its own batch).
        let fabric = Arc::new(SharedNetwork::new());
        fabric.register("http://slow.example", |req: &Request| {
            std::thread::sleep(Duration::from_millis(2));
            Response::ok_text(req.url.path().to_string())
        });
        fabric.register("http://nav.example", echo);
        // Many more requests than drain lanes: the batch's pending list must
        // still hold work when the navigation batch arrives, because only a
        // ticket with work behind it parks.
        const BULK_REQUESTS: usize = 192;
        let bulk_fabric = Arc::clone(&fabric);
        let storm = std::thread::spawn(move || {
            let base = bulk_fabric.reserve_sequences(BULK_REQUESTS as u64);
            let requests = (0..BULK_REQUESTS)
                .map(|i| Request::get(&format!("http://slow.example/b{i}")).unwrap())
                .collect();
            let results = bulk_fabric.dispatch_batch(base, requests, 48, Priority::Bulk);
            assert!(results.iter().all(Result::is_ok));
        });
        // Wait until the storm's first round has demonstrably completed (its
        // entries reach the log) so every pool worker is mid-drain, then ask
        // for navigation work.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fabric.log_len() < 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        let base = fabric.reserve_sequences(4);
        let requests = (0..4)
            .map(|i| Request::get(&format!("http://nav.example/n{i}")).unwrap())
            .collect();
        let results = fabric.dispatch_batch(base, requests, 4, Priority::Navigation);
        assert!(results.iter().all(Result::is_ok));
        storm.join().unwrap();
        assert!(
            fabric.fetch_pool_preemptions() >= 1,
            "no bulk worker yielded to the queued navigation batch"
        );
        assert_eq!(
            fabric.log_len(),
            BULK_REQUESTS + 4,
            "both batches completed"
        );
    }
}
