//! The recursive-descent / Pratt parser for the ECMAScript subset.

use std::rc::Rc;

use crate::ast::{AssignOp, BinOp, Expr, LogicalOp, MemberKey, Stmt, UnOp, UpdateOp};
use crate::error::ScriptError;
use crate::lexer::{tokenize, Tok};

/// Parses a complete program into a list of statements.
///
/// # Errors
///
/// Returns [`ScriptError::Lex`] or [`ScriptError::Parse`] for malformed input.
pub fn parse_program(source: &str) -> Result<Vec<Stmt>, ScriptError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !parser.check(&Tok::Eof) {
        statements.push(parser.statement()?);
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        self.tokens.get(self.pos).unwrap_or(&Tok::Eof)
    }

    fn peek_ahead(&self, offset: usize) -> &Tok {
        self.tokens.get(self.pos + offset).unwrap_or(&Tok::Eof)
    }

    fn advance(&mut self) -> Tok {
        let token = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn check(&self, expected: &Tok) -> bool {
        self.peek() == expected
    }

    fn eat(&mut self, expected: &Tok) -> bool {
        if self.check(expected) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Tok, context: &str) -> Result<(), ScriptError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {expected:?} {context}, found {:?}",
                self.peek()
            )))
        }
    }

    fn error(&self, message: String) -> ScriptError {
        ScriptError::Parse {
            message,
            position: self.pos,
        }
    }

    fn ident(&mut self, context: &str) -> Result<String, ScriptError> {
        match self.advance() {
            Tok::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected identifier {context}, found {other:?}"))),
        }
    }

    // -------------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek().clone() {
            Tok::Semi => {
                self.advance();
                Ok(Stmt::Empty)
            }
            Tok::Var | Tok::Let | Tok::Const => {
                self.advance();
                let stmt = self.var_declaration()?;
                self.eat(&Tok::Semi);
                Ok(stmt)
            }
            Tok::Function => {
                self.advance();
                let name = self.ident("after `function`")?;
                let (params, body) = self.function_rest()?;
                Ok(Stmt::FunctionDecl { name, params, body })
            }
            Tok::Return => {
                self.advance();
                if self.eat(&Tok::Semi) || self.check(&Tok::RBrace) || self.check(&Tok::Eof) {
                    return Ok(Stmt::Return(None));
                }
                let value = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Return(Some(value)))
            }
            Tok::If => {
                self.advance();
                self.expect(&Tok::LParen, "after `if`")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "after if condition")?;
                let then = self.block_or_single()?;
                let otherwise = if self.eat(&Tok::Else) {
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                })
            }
            Tok::While => {
                self.advance();
                self.expect(&Tok::LParen, "after `while`")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "after while condition")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::For => {
                self.advance();
                self.expect(&Tok::LParen, "after `for`")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let stmt = if matches!(self.peek(), Tok::Var | Tok::Let | Tok::Const) {
                        self.advance();
                        self.var_declaration()?
                    } else {
                        Stmt::Expr(self.expression()?)
                    };
                    self.expect(&Tok::Semi, "after for-loop initializer")?;
                    Some(Box::new(stmt))
                };
                let cond = if self.check(&Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::Semi, "after for-loop condition")?;
                let update = if self.check(&Tok::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::RParen, "after for-loop clauses")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            Tok::Break => {
                self.advance();
                self.eat(&Tok::Semi);
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.advance();
                self.eat(&Tok::Semi);
                Ok(Stmt::Continue)
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => {
                let expr = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn var_declaration(&mut self) -> Result<Stmt, ScriptError> {
        let name = self.ident("in variable declaration")?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Stmt::VarDecl { name, init })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(&Tok::LBrace, "to open a block")?;
        let mut statements = Vec::new();
        while !self.check(&Tok::RBrace) && !self.check(&Tok::Eof) {
            statements.push(self.statement()?);
        }
        self.expect(&Tok::RBrace, "to close a block")?;
        Ok(statements)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        if self.check(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn function_rest(&mut self) -> Result<(Vec<String>, Rc<Vec<Stmt>>), ScriptError> {
        self.expect(&Tok::LParen, "to open the parameter list")?;
        let mut params = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                params.push(self.ident("in parameter list")?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "to close the parameter list")?;
        let body = self.block()?;
        Ok((params, Rc::new(body)))
    }

    // -------------------------------------------------------------- expressions

    fn expression(&mut self) -> Result<Expr, ScriptError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ScriptError> {
        let target = self.conditional()?;
        let op = match self.peek() {
            Tok::Assign => Some(AssignOp::Assign),
            Tok::PlusAssign => Some(AssignOp::Add),
            Tok::MinusAssign => Some(AssignOp::Sub),
            _ => None,
        };
        let Some(op) = op else { return Ok(target) };
        if !matches!(target, Expr::Ident(_) | Expr::Member { .. }) {
            return Err(self.error("invalid assignment target".to_string()));
        }
        self.advance();
        let value = self.assignment()?;
        Ok(Expr::Assign {
            target: Box::new(target),
            op,
            value: Box::new(value),
        })
    }

    fn conditional(&mut self) -> Result<Expr, ScriptError> {
        let cond = self.logical_or()?;
        if !self.eat(&Tok::Question) {
            return Ok(cond);
        }
        let then = self.assignment()?;
        self.expect(&Tok::Colon, "in conditional expression")?;
        let otherwise = self.assignment()?;
        Ok(Expr::Conditional {
            cond: Box::new(cond),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        })
    }

    fn logical_or(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.logical_and()?;
        while self.eat(&Tok::OrOr) {
            let right = self.logical_and()?;
            left = Expr::Logical {
                op: LogicalOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn logical_and(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.equality()?;
        while self.eat(&Tok::AndAnd) {
            let right = self.equality()?;
            left = Expr::Logical {
                op: LogicalOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.comparison()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::NotEq,
                Tok::EqEqEq => BinOp::StrictEq,
                Tok::NotEqEq => BinOp::StrictNotEq,
                _ => break,
            };
            self.advance();
            let right = self.comparison()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn comparison(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let right = self.additive()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Plus => Some(UnOp::Plus),
            Tok::Not => Some(UnOp::Not),
            Tok::Typeof => Some(UnOp::Typeof),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let op = if self.advance() == Tok::PlusPlus {
                UpdateOp::Increment
            } else {
                UpdateOp::Decrement
            };
            let target = self.unary()?;
            return Ok(Expr::Update {
                op,
                prefix: true,
                target: Box::new(target),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let expr = self.call_member()?;
        match self.peek() {
            Tok::PlusPlus => {
                self.advance();
                Ok(Expr::Update {
                    op: UpdateOp::Increment,
                    prefix: false,
                    target: Box::new(expr),
                })
            }
            Tok::MinusMinus => {
                self.advance();
                Ok(Expr::Update {
                    op: UpdateOp::Decrement,
                    prefix: false,
                    target: Box::new(expr),
                })
            }
            _ => Ok(expr),
        }
    }

    fn call_member(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = if self.eat(&Tok::New) {
            let callee = self.primary()?;
            let args = if self.check(&Tok::LParen) {
                self.arguments()?
            } else {
                Vec::new()
            };
            Expr::New {
                callee: Box::new(callee),
                args,
            }
        } else {
            self.primary()?
        };

        loop {
            match self.peek() {
                Tok::Dot => {
                    self.advance();
                    let name = self.ident("after `.`")?;
                    expr = Expr::Member {
                        object: Box::new(expr),
                        property: MemberKey::Static(name),
                    };
                }
                Tok::LBracket => {
                    self.advance();
                    let key = self.expression()?;
                    self.expect(&Tok::RBracket, "to close computed member access")?;
                    expr = Expr::Member {
                        object: Box::new(expr),
                        property: MemberKey::Computed(Box::new(key)),
                    };
                }
                Tok::LParen => {
                    let args = self.arguments()?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ScriptError> {
        self.expect(&Tok::LParen, "to open an argument list")?;
        let mut args = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "to close an argument list")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        match self.advance() {
            Tok::Number(n) => Ok(Expr::Number(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Null => Ok(Expr::Null),
            Tok::Undefined => Ok(Expr::Undefined),
            Tok::Ident(name) => Ok(Expr::Ident(name)),
            Tok::LParen => {
                let expr = self.expression()?;
                self.expect(&Tok::RParen, "to close a parenthesized expression")?;
                Ok(expr)
            }
            Tok::LBracket => {
                let mut elements = Vec::new();
                if !self.check(&Tok::RBracket) {
                    loop {
                        elements.push(self.assignment()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "to close an array literal")?;
                Ok(Expr::Array(elements))
            }
            Tok::LBrace => {
                let mut properties = Vec::new();
                if !self.check(&Tok::RBrace) {
                    loop {
                        let key = match self.advance() {
                            Tok::Ident(name) => name,
                            Tok::Str(s) => s,
                            Tok::Number(n) => n.to_string(),
                            other => {
                                return Err(self.error(format!(
                                    "expected property name in object literal, found {other:?}"
                                )))
                            }
                        };
                        self.expect(&Tok::Colon, "after object-literal property name")?;
                        let value = self.assignment()?;
                        properties.push((key, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace, "to close an object literal")?;
                Ok(Expr::Object(properties))
            }
            Tok::Function => {
                let (params, body) = self.function_rest()?;
                Ok(Expr::Function { params, body })
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// Peeks whether the upcoming tokens look like the start of an expression — kept
    /// for future use by interactive tooling.
    #[allow(dead_code)]
    fn at_expression_start(&self) -> bool {
        matches!(
            self.peek_ahead(0),
            Tok::Number(_)
                | Tok::Str(_)
                | Tok::Ident(_)
                | Tok::True
                | Tok::False
                | Tok::Null
                | Tok::Undefined
                | Tok::LParen
                | Tok::LBracket
                | Tok::LBrace
                | Tok::Function
                | Tok::New
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_variable_declarations_and_calls() {
        let program =
            parse_program("var el = document.getElementById('x'); el.setAttribute('a', 1);")
                .unwrap();
        assert_eq!(program.len(), 2);
        assert!(matches!(&program[0], Stmt::VarDecl { name, .. } if name == "el"));
        assert!(matches!(&program[1], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn operator_precedence() {
        let program = parse_program("1 + 2 * 3;").unwrap();
        let Stmt::Expr(Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        }) = &program[0]
        else {
            panic!("expected addition at the top");
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            function f(n) {
                var total = 0;
                for (var i = 0; i < n; i++) {
                    if (i % 2 == 0) { total += i; } else { total -= 1; }
                }
                while (total > 100) { total = total / 2; }
                return total;
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.len(), 1);
        let Stmt::FunctionDecl { name, params, body } = &program[0] else {
            panic!("expected a function declaration");
        };
        assert_eq!(name, "f");
        assert_eq!(params, &vec!["n".to_string()]);
        assert!(body.len() >= 4);
    }

    #[test]
    fn parses_member_chains_new_and_literals() {
        let src = "var xhr = new XMLHttpRequest(); xhr.open('POST', '/api'); var cfg = {a: 1, 'b': [1,2,3]}; cfg.a = cfg['b'][0];";
        let program = parse_program(src).unwrap();
        assert_eq!(program.len(), 4);
        assert!(matches!(
            &program[0],
            Stmt::VarDecl {
                init: Some(Expr::New { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parses_conditional_and_logical_operators() {
        let program = parse_program("var x = a && b || c ? 'yes' : 'no';").unwrap();
        assert!(matches!(
            &program[0],
            Stmt::VarDecl {
                init: Some(Expr::Conditional { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parses_function_expressions_and_typeof() {
        let program = parse_program("var cb = function(e) { return typeof e; }; cb(1);").unwrap();
        assert_eq!(program.len(), 2);
        assert!(matches!(
            &program[0],
            Stmt::VarDecl {
                init: Some(Expr::Function { .. }),
                ..
            }
        ));
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_program("var = 3;").is_err());
        assert!(parse_program("if (x { }").is_err());
        assert!(parse_program("function () {}").is_err());
        assert!(parse_program("1 +").is_err());
        assert!(parse_program("foo(1,").is_err());
        assert!(parse_program("3 = x;").is_err());
    }

    #[test]
    fn postfix_and_prefix_updates() {
        let program = parse_program("i++; ++j; k--;").unwrap();
        assert!(matches!(
            &program[0],
            Stmt::Expr(Expr::Update {
                prefix: false,
                op: UpdateOp::Increment,
                ..
            })
        ));
        assert!(matches!(
            &program[1],
            Stmt::Expr(Expr::Update {
                prefix: true,
                op: UpdateOp::Increment,
                ..
            })
        ));
        assert!(matches!(
            &program[2],
            Stmt::Expr(Expr::Update {
                prefix: false,
                op: UpdateOp::Decrement,
                ..
            })
        ));
    }

    #[test]
    fn empty_statements_and_blocks() {
        let program = parse_program(";;{ var a = 1; };").unwrap();
        assert!(program.iter().any(|s| matches!(s, Stmt::Block(_))));
        assert!(program.iter().any(|s| matches!(s, Stmt::Empty)));
    }
}
