//! Runtime values and the object heap.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::Stmt;

/// A handle to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub(crate) usize);

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// IEEE-754 double, like JavaScript numbers.
    Number(f64),
    /// String.
    Str(String),
    /// Reference to a heap object (plain object, array, function, or native object).
    Object(ObjId),
}

impl Value {
    /// JavaScript truthiness.
    #[must_use]
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Object(_) => true,
        }
    }

    /// The string slice when this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The `typeof` string for this value.
    #[must_use]
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) => "object",
        }
    }

    /// Numeric coercion (JavaScript-ish: booleans become 0/1, numeric strings parse,
    /// everything else is NaN).
    #[must_use]
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(true) => 1.0,
            Value::Bool(false) => 0.0,
            Value::Number(n) => *n,
            Value::Str(s) => {
                let trimmed = s.trim();
                if trimmed.is_empty() {
                    0.0
                } else {
                    trimmed.parse().unwrap_or(f64::NAN)
                }
            }
            Value::Object(_) => f64::NAN,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => f.write_str("undefined"),
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Object(_) => f.write_str("[object Object]"),
        }
    }
}

/// A native (browser-provided) object the interpreter knows about. The payload is an
/// opaque handle owned by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeTag {
    /// The global `document` object.
    Document,
    /// A DOM node handle.
    Node(u64),
    /// An `XMLHttpRequest` instance.
    Xhr(u64),
    /// The `history` object (browser state).
    History,
    /// The `console` object.
    Console,
    /// The `window` object.
    Window,
}

/// Built-in (native) functions. Each is dispatched by the interpreter with its bound
/// `this` value and routed to the [`Host`](crate::Host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeFn {
    /// `document.getElementById(id)`
    GetElementById,
    /// `document.getElementsByTagName(tag)`
    GetElementsByTagName,
    /// `document.createElement(tag)`
    CreateElement,
    /// `document.createTextNode(text)`
    CreateTextNode,
    /// `document.write(html)`
    DocumentWrite,
    /// `node.appendChild(child)`
    AppendChild,
    /// `node.removeChild(child)`
    RemoveChild,
    /// `node.setAttribute(name, value)`
    SetAttribute,
    /// `node.getAttribute(name)`
    GetAttribute,
    /// `new XMLHttpRequest()`
    XhrConstructor,
    /// `xhr.open(method, url)`
    XhrOpen,
    /// `xhr.setRequestHeader(name, value)`
    XhrSetRequestHeader,
    /// `xhr.send(body)`
    XhrSend,
    /// `history.back()`
    HistoryBack,
    /// `alert(message)`
    Alert,
    /// `console.log(...)`
    ConsoleLog,
    /// `array.push(value)`
    ArrayPush,
    /// `string/array.indexOf(needle)`
    IndexOf,
}

/// What a function object runs when called.
#[derive(Debug, Clone)]
pub enum Callable {
    /// A user-defined function (closure over `scope`).
    User {
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Rc<Vec<Stmt>>,
        /// The scope the function closes over.
        scope: usize,
    },
    /// A built-in function.
    Native(NativeFn),
}

/// A heap object: properties, optional array storage, optional callable, optional
/// native identity.
#[derive(Debug, Clone, Default)]
pub struct Obj {
    /// Named properties.
    pub props: HashMap<String, Value>,
    /// Dense array elements (for array objects).
    pub elements: Option<Vec<Value>>,
    /// What calling this object does, if it is callable.
    pub callable: Option<Callable>,
    /// The native identity, if this object is provided by the browser.
    pub native: Option<NativeTag>,
}

impl Obj {
    /// A plain object.
    #[must_use]
    pub fn plain() -> Self {
        Obj::default()
    }

    /// An array object with the given elements.
    #[must_use]
    pub fn array(elements: Vec<Value>) -> Self {
        Obj {
            elements: Some(elements),
            ..Obj::default()
        }
    }

    /// A native object with the given tag.
    #[must_use]
    pub fn native(tag: NativeTag) -> Self {
        Obj {
            native: Some(tag),
            ..Obj::default()
        }
    }

    /// A native function.
    #[must_use]
    pub fn native_fn(function: NativeFn) -> Self {
        Obj {
            callable: Some(Callable::Native(function)),
            ..Obj::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_javascript() {
        assert!(!Value::Undefined.is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Number(0.0).is_truthy());
        assert!(!Value::Number(f64::NAN).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Number(-1.5).is_truthy());
        assert!(Value::Str("0".into()).is_truthy());
        assert!(Value::Object(ObjId(0)).is_truthy());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Null.to_number(), 0.0);
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Str(" 42 ".into()).to_number(), 42.0);
        assert_eq!(Value::Str("".into()).to_number(), 0.0);
        assert!(Value::Str("abc".into()).to_number().is_nan());
        assert!(Value::Undefined.to_number().is_nan());
    }

    #[test]
    fn display_formats_integers_without_fraction() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.25).to_string(), "3.25");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Undefined.to_string(), "undefined");
    }

    #[test]
    fn typeof_strings() {
        assert_eq!(Value::Undefined.type_of(), "undefined");
        assert_eq!(Value::Null.type_of(), "object");
        assert_eq!(Value::Number(1.0).type_of(), "number");
        assert_eq!(Value::Str("s".into()).type_of(), "string");
        assert_eq!(Value::Bool(true).type_of(), "boolean");
        assert_eq!(Value::Object(ObjId(3)).type_of(), "object");
    }

    #[test]
    fn object_constructors() {
        let arr = Obj::array(vec![Value::Number(1.0)]);
        assert_eq!(arr.elements.as_ref().unwrap().len(), 1);
        let doc = Obj::native(NativeTag::Document);
        assert_eq!(doc.native, Some(NativeTag::Document));
        let f = Obj::native_fn(NativeFn::Alert);
        assert!(matches!(
            f.callable,
            Some(Callable::Native(NativeFn::Alert))
        ));
    }
}
