//! Script errors.

use std::error::Error;
use std::fmt;

use crate::host::HostError;

/// Errors produced while lexing, parsing or executing a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// The source could not be tokenized.
    Lex {
        /// Explanation.
        message: String,
        /// Byte position in the source.
        position: usize,
    },
    /// The token stream could not be parsed.
    Parse {
        /// Explanation.
        message: String,
        /// Approximate token index.
        position: usize,
    },
    /// A runtime error: type errors, unknown identifiers, calling non-functions, …
    Runtime(String),
    /// A host (browser) call was denied by the reference monitor.
    AccessDenied(String),
    /// A host call failed for a non-policy reason (missing node, unreachable host, …).
    HostFailure(String),
    /// The script exceeded the interpreter's step budget.
    StepLimitExceeded,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            ScriptError::Parse { message, position } => {
                write!(f, "parse error near token {position}: {message}")
            }
            ScriptError::Runtime(message) => write!(f, "runtime error: {message}"),
            ScriptError::AccessDenied(message) => write!(f, "access denied: {message}"),
            ScriptError::HostFailure(message) => write!(f, "host error: {message}"),
            ScriptError::StepLimitExceeded => write!(f, "script exceeded its step budget"),
        }
    }
}

impl Error for ScriptError {}

impl From<HostError> for ScriptError {
    fn from(e: HostError) -> Self {
        match e {
            HostError::AccessDenied(reason) => ScriptError::AccessDenied(reason),
            HostError::NotFound(what) => ScriptError::HostFailure(format!("not found: {what}")),
            HostError::Network(what) => ScriptError::HostFailure(format!("network: {what}")),
            HostError::Unsupported(what) => {
                ScriptError::HostFailure(format!("unsupported: {what}"))
            }
        }
    }
}

impl ScriptError {
    /// `true` when the error is a reference-monitor denial (as opposed to a plain
    /// script bug). The defense-effectiveness experiments use this to distinguish
    /// "attack neutralized by ESCUDO" from "attack script was broken".
    #[must_use]
    pub fn is_access_denied(&self) -> bool {
        matches!(self, ScriptError::AccessDenied(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_errors_convert_with_the_right_flavor() {
        let denied: ScriptError = HostError::AccessDenied("ring rule".into()).into();
        assert!(denied.is_access_denied());
        assert!(denied.to_string().contains("ring rule"));

        let missing: ScriptError = HostError::NotFound("node #7".into()).into();
        assert!(!missing.is_access_denied());
        assert!(missing.to_string().contains("node #7"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<ScriptError>();
    }
}
