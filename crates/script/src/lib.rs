//! # escudo-script
//!
//! A small but real ECMAScript-subset interpreter used as the scripting engine of the
//! ESCUDO browser reproduction (standing in for Rhino inside the Lobo prototype).
//!
//! The language subset covers what the paper's principals do: declare variables and
//! functions, manipulate the DOM through `document`, read and write `document.cookie`,
//! issue AJAX requests with `new XMLHttpRequest()`, and poke at `history`. All of those
//! effects go through the [`Host`] trait; the browser implements `Host` and interposes
//! the ESCUDO Reference Monitor on **every** call, so a script's privileges are exactly
//! the privileges of its ring. A denied host call surfaces as a script exception (and
//! aborts the script, since the subset has no `try`/`catch`), mirroring how the
//! prototype's embedded checks stop an unauthorized access.
//!
//! # Example
//!
//! ```
//! use escudo_script::{Interpreter, MockHost};
//!
//! let mut host = MockHost::new();
//! host.add_element("greeting", "div", "hello");
//! let mut interp = Interpreter::new(&mut host);
//! let value = interp
//!     .run("var el = document.getElementById('greeting'); el.innerHTML = 'updated'; el.innerHTML;")
//!     .unwrap();
//! assert_eq!(value.as_str(), Some("updated"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod error;
pub mod host;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod value;

pub use error::ScriptError;
pub use host::{Host, HostError, HostNodeId, HostXhrId, MockHost, XhrOutcome};
pub use interp::Interpreter;
pub use value::Value;
