//! The abstract syntax tree for the ECMAScript subset.

use std::rc::Rc;

/// Binary arithmetic / comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (loose)
    Eq,
    /// `!=` (loose)
    NotEq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// Short-circuiting logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalOp {
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `typeof`
    Typeof,
    /// unary `+`
    Plus,
}

/// Compound-assignment flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
}

/// `++` / `--`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `++`
    Increment,
    /// `--`
    Decrement,
}

/// A property key in a member expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberKey {
    /// `obj.name`
    Static(String),
    /// `obj[expr]`
    Computed(Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Identifier reference.
    Ident(String),
    /// Assignment to an identifier or member expression.
    Assign {
        /// The assignment target (identifier or member expression).
        target: Box<Expr>,
        /// The flavour (`=`, `+=`, `-=`).
        op: AssignOp,
        /// The right-hand side.
        value: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Short-circuiting logical operation.
    Logical {
        /// Operator.
        op: LogicalOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `++x`, `x++`, `--x`, `x--`.
    Update {
        /// `++` or `--`.
        op: UpdateOp,
        /// `true` for the prefix form.
        prefix: bool,
        /// The target (identifier or member expression).
        target: Box<Expr>,
    },
    /// Function call.
    Call {
        /// The callee expression (identifier or member expression).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `new Callee(args)`.
    New {
        /// The constructor expression.
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Member access.
    Member {
        /// The object expression.
        object: Box<Expr>,
        /// The property key.
        property: MemberKey,
    },
    /// `cond ? then : else`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value when truthy.
        then: Box<Expr>,
        /// Value when falsy.
        otherwise: Box<Expr>,
    },
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal (`{key: value, …}`).
    Object(Vec<(String, Expr)>),
    /// Function expression.
    Function {
        /// Parameter names.
        params: Vec<String>,
        /// Body statements (shared so closures are cheap to clone).
        body: Rc<Vec<Stmt>>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An expression evaluated for its effects.
    Expr(Expr),
    /// `var` / `let` / `const` declaration (all treated as function-scoped `var`).
    VarDecl {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Named function declaration.
    FunctionDecl {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Rc<Vec<Stmt>>,
    },
    /// `return` with an optional value.
    Return(Option<Expr>),
    /// `if` / `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Optional else branch.
        otherwise: Option<Vec<Stmt>>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Classic `for (init; cond; update)` loop.
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Loop condition (defaults to true when omitted).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// A `{ … }` block.
    Block(Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An empty statement (`;`).
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_cloneable_and_comparable() {
        let expr = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Number(1.0)),
            right: Box::new(Expr::Str("x".into())),
        };
        assert_eq!(expr.clone(), expr);
        let stmt = Stmt::Return(Some(expr));
        assert_eq!(stmt.clone(), stmt);
    }

    #[test]
    fn function_bodies_are_shared() {
        let body = Rc::new(vec![Stmt::Return(None)]);
        let f1 = Expr::Function {
            params: vec!["a".into()],
            body: Rc::clone(&body),
        };
        let f2 = f1.clone();
        match (&f1, &f2) {
            (Expr::Function { body: b1, .. }, Expr::Function { body: b2, .. }) => {
                assert!(Rc::ptr_eq(b1, b2));
            }
            _ => unreachable!(),
        }
    }
}
