//! The tree-walking interpreter.

use std::collections::HashMap;

use crate::ast::{AssignOp, BinOp, Expr, LogicalOp, MemberKey, Stmt, UnOp, UpdateOp};
use crate::error::ScriptError;
use crate::host::Host;
use crate::parser::parse_program;
use crate::value::{Callable, NativeFn, NativeTag, Obj, ObjId, Value};

/// Default number of evaluation steps a script may take before it is aborted.
pub const DEFAULT_STEP_LIMIT: u64 = 2_000_000;

#[derive(Debug)]
struct Scope {
    vars: HashMap<String, Value>,
    parent: Option<usize>,
}

/// How a statement finished.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// The script interpreter. One interpreter instance executes one script (or a series
/// of scripts sharing globals) against a single [`Host`].
pub struct Interpreter<'h> {
    host: &'h mut dyn Host,
    heap: Vec<Obj>,
    scopes: Vec<Scope>,
    steps_remaining: u64,
    /// Value of the most recent expression statement; `run` returns it so callers and
    /// tests can observe a script's "result" without a return statement.
    last_expression_value: Option<Value>,
}

impl std::fmt::Debug for Interpreter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("heap_objects", &self.heap.len())
            .field("scopes", &self.scopes.len())
            .field("steps_remaining", &self.steps_remaining)
            .finish()
    }
}

impl<'h> Interpreter<'h> {
    /// Creates an interpreter whose effectful operations go to `host`.
    pub fn new(host: &'h mut dyn Host) -> Self {
        let mut interp = Interpreter {
            host,
            heap: Vec::new(),
            scopes: vec![Scope {
                vars: HashMap::new(),
                parent: None,
            }],
            steps_remaining: DEFAULT_STEP_LIMIT,
            last_expression_value: None,
        };
        interp.install_globals();
        interp
    }

    /// Replaces the step budget (builder style). Scripts exceeding the budget abort
    /// with [`ScriptError::StepLimitExceeded`].
    #[must_use]
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.steps_remaining = limit;
        self
    }

    /// Parses and runs a script. Returns the value of the last expression statement
    /// (useful for tests and examples), or `undefined`.
    ///
    /// # Errors
    ///
    /// Propagates lexer/parser errors, runtime errors, host failures and — crucially
    /// for ESCUDO — [`ScriptError::AccessDenied`] when the reference monitor rejects a
    /// host call made by the script.
    pub fn run(&mut self, source: &str) -> Result<Value, ScriptError> {
        let program = parse_program(source)?;
        self.run_program(&program)
    }

    /// Runs an already-parsed program.
    ///
    /// # Errors
    ///
    /// See [`Interpreter::run`].
    pub fn run_program(&mut self, program: &[Stmt]) -> Result<Value, ScriptError> {
        let mut last = Value::Undefined;
        for stmt in program {
            match self.exec(stmt, 0)? {
                Flow::Return(value) => return Ok(value),
                Flow::Normal => {
                    if let Stmt::Expr(_) = stmt {
                        last = self
                            .last_expression_value
                            .take()
                            .unwrap_or(Value::Undefined);
                    }
                }
                Flow::Break | Flow::Continue => {}
            }
        }
        Ok(last)
    }

    // ------------------------------------------------------------- bookkeeping

    fn charge(&mut self) -> Result<(), ScriptError> {
        if self.steps_remaining == 0 {
            return Err(ScriptError::StepLimitExceeded);
        }
        self.steps_remaining -= 1;
        Ok(())
    }

    fn alloc(&mut self, obj: Obj) -> Value {
        self.heap.push(obj);
        Value::Object(ObjId(self.heap.len() - 1))
    }

    fn obj(&self, id: ObjId) -> &Obj {
        &self.heap[id.0]
    }

    fn obj_mut(&mut self, id: ObjId) -> &mut Obj {
        &mut self.heap[id.0]
    }

    fn install_globals(&mut self) {
        let document = self.alloc(Obj::native(NativeTag::Document));
        let history = self.alloc(Obj::native(NativeTag::History));
        let console = self.alloc(Obj::native(NativeTag::Console));
        let window = self.alloc(Obj::native(NativeTag::Window));
        let alert = self.alloc(Obj::native_fn(NativeFn::Alert));
        let xhr_ctor = self.alloc(Obj::native_fn(NativeFn::XhrConstructor));
        let globals = &mut self.scopes[0].vars;
        globals.insert("document".to_string(), document);
        globals.insert("history".to_string(), history);
        globals.insert("console".to_string(), console);
        globals.insert("window".to_string(), window);
        globals.insert("alert".to_string(), alert);
        globals.insert("XMLHttpRequest".to_string(), xhr_ctor);
    }

    // ------------------------------------------------------------- scopes

    fn lookup(&self, scope: usize, name: &str) -> Option<Value> {
        let mut current = Some(scope);
        while let Some(idx) = current {
            if let Some(value) = self.scopes[idx].vars.get(name) {
                return Some(value.clone());
            }
            current = self.scopes[idx].parent;
        }
        None
    }

    fn assign_existing(&mut self, scope: usize, name: &str, value: Value) -> bool {
        let mut current = Some(scope);
        while let Some(idx) = current {
            if self.scopes[idx].vars.contains_key(name) {
                self.scopes[idx].vars.insert(name.to_string(), value);
                return true;
            }
            current = self.scopes[idx].parent;
        }
        false
    }

    fn declare(&mut self, scope: usize, name: &str, value: Value) {
        self.scopes[scope].vars.insert(name.to_string(), value);
    }

    // ------------------------------------------------------------- statements

    fn exec(&mut self, stmt: &Stmt, scope: usize) -> Result<Flow, ScriptError> {
        self.charge()?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Expr(expr) => {
                let value = self.eval(expr, scope)?;
                self.last_expression_value = Some(value);
                Ok(Flow::Normal)
            }
            Stmt::VarDecl { name, init } => {
                let value = match init {
                    Some(expr) => self.eval(expr, scope)?,
                    None => Value::Undefined,
                };
                self.declare(scope, name, value);
                Ok(Flow::Normal)
            }
            Stmt::FunctionDecl { name, params, body } => {
                let function = self.alloc(Obj {
                    callable: Some(Callable::User {
                        params: params.clone(),
                        body: body.clone(),
                        scope,
                    }),
                    ..Obj::default()
                });
                self.declare(scope, name, function);
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let value = match expr {
                    Some(expr) => self.eval(expr, scope)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(value))
            }
            Stmt::Block(statements) => self.exec_block(statements, scope),
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, scope)?.is_truthy() {
                    self.exec_block(then, scope)
                } else if let Some(otherwise) = otherwise {
                    self.exec_block(otherwise, scope)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, scope)?.is_truthy() {
                    match self.exec_block(body, scope)? {
                        Flow::Return(value) => return Ok(Flow::Return(value)),
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(init, scope)?;
                }
                loop {
                    let keep_going = match cond {
                        Some(cond) => self.eval(cond, scope)?.is_truthy(),
                        None => true,
                    };
                    if !keep_going {
                        break;
                    }
                    match self.exec_block(body, scope)? {
                        Flow::Return(value) => return Ok(Flow::Return(value)),
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                    }
                    if let Some(update) = update {
                        self.eval(update, scope)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn exec_block(&mut self, statements: &[Stmt], scope: usize) -> Result<Flow, ScriptError> {
        for stmt in statements {
            match self.exec(stmt, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    // ------------------------------------------------------------- expressions

    fn eval(&mut self, expr: &Expr, scope: usize) -> Result<Value, ScriptError> {
        self.charge()?;
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::Ident(name) => self
                .lookup(scope, name)
                .ok_or_else(|| ScriptError::Runtime(format!("`{name}` is not defined"))),
            Expr::Array(elements) => {
                let mut values = Vec::with_capacity(elements.len());
                for element in elements {
                    values.push(self.eval(element, scope)?);
                }
                Ok(self.alloc(Obj::array(values)))
            }
            Expr::Object(properties) => {
                let mut obj = Obj::plain();
                for (key, value_expr) in properties {
                    let value = self.eval(value_expr, scope)?;
                    obj.props.insert(key.clone(), value);
                }
                Ok(self.alloc(obj))
            }
            Expr::Function { params, body } => Ok(self.alloc(Obj {
                callable: Some(Callable::User {
                    params: params.clone(),
                    body: body.clone(),
                    scope,
                }),
                ..Obj::default()
            })),
            Expr::Unary { op, expr } => {
                let value = self.eval(expr, scope)?;
                Ok(match op {
                    UnOp::Neg => Value::Number(-value.to_number()),
                    UnOp::Plus => Value::Number(value.to_number()),
                    UnOp::Not => Value::Bool(!value.is_truthy()),
                    UnOp::Typeof => {
                        let name = if matches!(&value, Value::Object(id) if self.obj(*id).callable.is_some())
                        {
                            "function"
                        } else {
                            value.type_of()
                        };
                        Value::Str(name.to_string())
                    }
                })
            }
            Expr::Binary { op, left, right } => {
                let left = self.eval(left, scope)?;
                let right = self.eval(right, scope)?;
                self.binary(*op, left, right)
            }
            Expr::Logical { op, left, right } => {
                let left = self.eval(left, scope)?;
                match op {
                    LogicalOp::And => {
                        if left.is_truthy() {
                            self.eval(right, scope)
                        } else {
                            Ok(left)
                        }
                    }
                    LogicalOp::Or => {
                        if left.is_truthy() {
                            Ok(left)
                        } else {
                            self.eval(right, scope)
                        }
                    }
                }
            }
            Expr::Conditional {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, scope)?.is_truthy() {
                    self.eval(then, scope)
                } else {
                    self.eval(otherwise, scope)
                }
            }
            Expr::Assign { target, op, value } => {
                let rhs = self.eval(value, scope)?;
                let new_value = match op {
                    AssignOp::Assign => rhs,
                    AssignOp::Add => {
                        let current = self.eval(target, scope)?;
                        self.binary(BinOp::Add, current, rhs)?
                    }
                    AssignOp::Sub => {
                        let current = self.eval(target, scope)?;
                        self.binary(BinOp::Sub, current, rhs)?
                    }
                };
                self.assign(target, new_value.clone(), scope)?;
                Ok(new_value)
            }
            Expr::Update { op, prefix, target } => {
                let current = self.eval(target, scope)?.to_number();
                let delta = match op {
                    UpdateOp::Increment => 1.0,
                    UpdateOp::Decrement => -1.0,
                };
                let updated = Value::Number(current + delta);
                self.assign(target, updated.clone(), scope)?;
                Ok(if *prefix {
                    updated
                } else {
                    Value::Number(current)
                })
            }
            Expr::Member { object, property } => {
                let object_value = self.eval(object, scope)?;
                let key = self.member_key(property, scope)?;
                self.get_member(object_value, &key)
            }
            Expr::Call { callee, args } => {
                let (function, this) = match callee.as_ref() {
                    Expr::Member { object, property } => {
                        let this = self.eval(object, scope)?;
                        let key = self.member_key(property, scope)?;
                        let function = self.get_member(this.clone(), &key)?;
                        (function, this)
                    }
                    other => (self.eval(other, scope)?, Value::Undefined),
                };
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(arg, scope)?);
                }
                self.call(function, this, arg_values)
            }
            Expr::New { callee, args } => {
                let function = self.eval(callee, scope)?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(arg, scope)?);
                }
                self.construct(function, arg_values)
            }
        }
    }

    fn member_key(&mut self, property: &MemberKey, scope: usize) -> Result<String, ScriptError> {
        match property {
            MemberKey::Static(name) => Ok(name.clone()),
            MemberKey::Computed(expr) => {
                let value = self.eval(expr, scope)?;
                Ok(value.to_string())
            }
        }
    }

    // ------------------------------------------------------------- operators

    fn binary(&mut self, op: BinOp, left: Value, right: Value) -> Result<Value, ScriptError> {
        use BinOp::*;
        let value = match op {
            Add => {
                if matches!(left, Value::Str(_)) || matches!(right, Value::Str(_)) {
                    Value::Str(format!("{left}{right}"))
                } else {
                    Value::Number(left.to_number() + right.to_number())
                }
            }
            Sub => Value::Number(left.to_number() - right.to_number()),
            Mul => Value::Number(left.to_number() * right.to_number()),
            Div => Value::Number(left.to_number() / right.to_number()),
            Rem => Value::Number(left.to_number() % right.to_number()),
            Lt => Value::Bool(self.compare(&left, &right, |o| o == std::cmp::Ordering::Less)),
            Gt => Value::Bool(self.compare(&left, &right, |o| o == std::cmp::Ordering::Greater)),
            Le => Value::Bool(self.compare(&left, &right, |o| o != std::cmp::Ordering::Greater)),
            Ge => Value::Bool(self.compare(&left, &right, |o| o != std::cmp::Ordering::Less)),
            StrictEq => Value::Bool(strict_eq(&left, &right)),
            StrictNotEq => Value::Bool(!strict_eq(&left, &right)),
            Eq => Value::Bool(loose_eq(&left, &right)),
            NotEq => Value::Bool(!loose_eq(&left, &right)),
        };
        Ok(value)
    }

    fn compare<F: Fn(std::cmp::Ordering) -> bool>(
        &self,
        left: &Value,
        right: &Value,
        check: F,
    ) -> bool {
        if let (Value::Str(a), Value::Str(b)) = (left, right) {
            return check(a.cmp(b));
        }
        let (a, b) = (left.to_number(), right.to_number());
        match a.partial_cmp(&b) {
            Some(ordering) => check(ordering),
            None => false,
        }
    }

    // ------------------------------------------------------------- assignment

    fn assign(&mut self, target: &Expr, value: Value, scope: usize) -> Result<(), ScriptError> {
        match target {
            Expr::Ident(name) => {
                if !self.assign_existing(scope, name, value.clone()) {
                    // Implicit global, like sloppy-mode JavaScript.
                    self.declare(0, name, value);
                }
                Ok(())
            }
            Expr::Member { object, property } => {
                let object_value = self.eval(object, scope)?;
                let key = self.member_key(property, scope)?;
                self.set_member(object_value, &key, value)
            }
            _ => Err(ScriptError::Runtime("invalid assignment target".into())),
        }
    }

    // ------------------------------------------------------------- member access

    fn get_member(&mut self, object: Value, key: &str) -> Result<Value, ScriptError> {
        match object {
            Value::Str(s) => match key {
                "length" => Ok(Value::Number(s.chars().count() as f64)),
                "indexOf" => {
                    let bound = self.alloc(Obj {
                        callable: Some(Callable::Native(NativeFn::IndexOf)),
                        ..Obj::default()
                    });
                    if let Value::Object(id) = bound {
                        self.obj_mut(id)
                            .props
                            .insert("__this".into(), Value::Str(s));
                    }
                    Ok(bound)
                }
                _ => Ok(Value::Undefined),
            },
            Value::Object(id) => {
                if let Some(tag) = self.obj(id).native {
                    if let Some(value) = self.native_get(tag, key)? {
                        return Ok(value);
                    }
                }
                if let Some(elements) = &self.obj(id).elements {
                    if key == "length" {
                        return Ok(Value::Number(elements.len() as f64));
                    }
                    if key == "push" {
                        return Ok(self.alloc(Obj::native_fn(NativeFn::ArrayPush)));
                    }
                    if let Ok(index) = key.parse::<usize>() {
                        return Ok(elements.get(index).cloned().unwrap_or(Value::Undefined));
                    }
                }
                Ok(self
                    .obj(id)
                    .props
                    .get(key)
                    .cloned()
                    .unwrap_or(Value::Undefined))
            }
            Value::Undefined | Value::Null => Err(ScriptError::Runtime(format!(
                "cannot read property `{key}` of {object}"
            ))),
            _ => Ok(Value::Undefined),
        }
    }

    fn set_member(&mut self, object: Value, key: &str, value: Value) -> Result<(), ScriptError> {
        match object {
            Value::Object(id) => {
                if let Some(tag) = self.obj(id).native {
                    if self.native_set(tag, key, &value)? {
                        return Ok(());
                    }
                }
                if let Some(elements) = &mut self.obj_mut(id).elements {
                    if let Ok(index) = key.parse::<usize>() {
                        if index >= elements.len() {
                            elements.resize(index + 1, Value::Undefined);
                        }
                        elements[index] = value;
                        return Ok(());
                    }
                }
                self.obj_mut(id).props.insert(key.to_string(), value);
                Ok(())
            }
            other => Err(ScriptError::Runtime(format!(
                "cannot set property `{key}` on {other}"
            ))),
        }
    }

    // ------------------------------------------------------------- calls

    fn call(
        &mut self,
        function: Value,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, ScriptError> {
        let Value::Object(id) = function else {
            return Err(ScriptError::Runtime(format!(
                "{function} is not a function"
            )));
        };
        let callable = self
            .obj(id)
            .callable
            .clone()
            .ok_or_else(|| ScriptError::Runtime("value is not callable".into()))?;
        match callable {
            Callable::User {
                params,
                body,
                scope,
            } => {
                let call_scope = self.scopes.len();
                self.scopes.push(Scope {
                    vars: HashMap::new(),
                    parent: Some(scope),
                });
                for (index, param) in params.iter().enumerate() {
                    let value = args.get(index).cloned().unwrap_or(Value::Undefined);
                    self.declare(call_scope, param, value);
                }
                self.declare(call_scope, "this", this);
                let result = match self.exec_block(&body, call_scope)? {
                    Flow::Return(value) => value,
                    _ => Value::Undefined,
                };
                Ok(result)
            }
            Callable::Native(native) => self.call_native(native, id, this, args),
        }
    }

    fn construct(&mut self, function: Value, args: Vec<Value>) -> Result<Value, ScriptError> {
        let Value::Object(id) = function else {
            return Err(ScriptError::Runtime(format!(
                "{function} is not a constructor"
            )));
        };
        match self.obj(id).callable.clone() {
            Some(Callable::Native(NativeFn::XhrConstructor)) => {
                let handle = self.host.xhr_create()?;
                Ok(self.alloc(Obj::native(NativeTag::Xhr(handle))))
            }
            Some(Callable::User { .. }) => {
                let instance = self.alloc(Obj::plain());
                self.call(function, instance.clone(), args)?;
                Ok(instance)
            }
            _ => Err(ScriptError::Runtime("value is not a constructor".into())),
        }
    }

    // ------------------------------------------------------------- native objects

    fn wrap_node(&mut self, node: u64) -> Value {
        self.alloc(Obj::native(NativeTag::Node(node)))
    }

    fn expect_node(&self, value: &Value, what: &str) -> Result<u64, ScriptError> {
        if let Value::Object(id) = value {
            if let Some(NativeTag::Node(node)) = self.obj(*id).native {
                return Ok(node);
            }
        }
        Err(ScriptError::Runtime(format!("{what} expects a DOM node")))
    }

    fn native_get(&mut self, tag: NativeTag, key: &str) -> Result<Option<Value>, ScriptError> {
        let make_fn = |interp: &mut Self, f: NativeFn| Some(interp.alloc(Obj::native_fn(f)));
        let value = match (tag, key) {
            (NativeTag::Document, "getElementById") => make_fn(self, NativeFn::GetElementById),
            (NativeTag::Document, "getElementsByTagName") => {
                make_fn(self, NativeFn::GetElementsByTagName)
            }
            (NativeTag::Document, "createElement") => make_fn(self, NativeFn::CreateElement),
            (NativeTag::Document, "createTextNode") => make_fn(self, NativeFn::CreateTextNode),
            (NativeTag::Document, "write") => make_fn(self, NativeFn::DocumentWrite),
            (NativeTag::Document, "cookie") => Some(Value::Str(self.host.cookie_get()?)),
            (NativeTag::Document, "body") => match self.host.document_body()? {
                Some(node) => Some(self.wrap_node(node)),
                None => Some(Value::Null),
            },
            (NativeTag::Node(_), "appendChild") => make_fn(self, NativeFn::AppendChild),
            (NativeTag::Node(_), "removeChild") => make_fn(self, NativeFn::RemoveChild),
            (NativeTag::Node(_), "setAttribute") => make_fn(self, NativeFn::SetAttribute),
            (NativeTag::Node(_), "getAttribute") => make_fn(self, NativeFn::GetAttribute),
            (NativeTag::Node(node), "innerHTML") => {
                Some(Value::Str(self.host.get_inner_html(node)?))
            }
            (NativeTag::Node(node), "textContent") => {
                Some(Value::Str(self.host.get_text_content(node)?))
            }
            (NativeTag::Node(node), "tagName") => Some(Value::Str(self.host.tag_name(node)?)),
            (NativeTag::Node(node), "id") => Some(Value::Str(
                self.host.get_attribute(node, "id")?.unwrap_or_default(),
            )),
            (NativeTag::Xhr(_), "open") => make_fn(self, NativeFn::XhrOpen),
            (NativeTag::Xhr(_), "send") => make_fn(self, NativeFn::XhrSend),
            (NativeTag::Xhr(_), "setRequestHeader") => make_fn(self, NativeFn::XhrSetRequestHeader),
            (NativeTag::History, "length") => {
                Some(Value::Number(self.host.history_length()? as f64))
            }
            (NativeTag::History, "back") => make_fn(self, NativeFn::HistoryBack),
            (NativeTag::Console, "log") => make_fn(self, NativeFn::ConsoleLog),
            (NativeTag::Window, "document") => self.lookup(0, "document"),
            (NativeTag::Window, "history") => self.lookup(0, "history"),
            (NativeTag::Window, "alert") => self.lookup(0, "alert"),
            _ => None,
        };
        Ok(value)
    }

    fn native_set(
        &mut self,
        tag: NativeTag,
        key: &str,
        value: &Value,
    ) -> Result<bool, ScriptError> {
        match (tag, key) {
            (NativeTag::Document, "cookie") => {
                self.host.cookie_set(&value.to_string())?;
                Ok(true)
            }
            (NativeTag::Node(node), "innerHTML") => {
                self.host.set_inner_html(node, &value.to_string())?;
                Ok(true)
            }
            (NativeTag::Node(node), "textContent") => {
                self.host.set_inner_html(node, &value.to_string())?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn call_native(
        &mut self,
        native: NativeFn,
        function_obj: ObjId,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, ScriptError> {
        let arg = |index: usize| args.get(index).cloned().unwrap_or(Value::Undefined);
        match native {
            NativeFn::GetElementById => {
                let id = arg(0).to_string();
                match self.host.get_element_by_id(&id)? {
                    Some(node) => Ok(self.wrap_node(node)),
                    None => Ok(Value::Null),
                }
            }
            NativeFn::GetElementsByTagName => {
                let tag = arg(0).to_string();
                let nodes = self.host.get_elements_by_tag_name(&tag)?;
                let wrapped: Vec<Value> = nodes.into_iter().map(|n| self.wrap_node(n)).collect();
                Ok(self.alloc(Obj::array(wrapped)))
            }
            NativeFn::CreateElement => {
                let tag = arg(0).to_string();
                let node = self.host.create_element(&tag)?;
                Ok(self.wrap_node(node))
            }
            NativeFn::CreateTextNode => {
                let text = arg(0).to_string();
                let node = self.host.create_text_node(&text)?;
                Ok(self.wrap_node(node))
            }
            NativeFn::DocumentWrite => {
                self.host.document_write(&arg(0).to_string())?;
                Ok(Value::Undefined)
            }
            NativeFn::AppendChild => {
                let parent = self.expect_node(&this, "appendChild")?;
                let child = self.expect_node(&arg(0), "appendChild")?;
                self.host.append_child(parent, child)?;
                Ok(arg(0))
            }
            NativeFn::RemoveChild => {
                let parent = self.expect_node(&this, "removeChild")?;
                let child = self.expect_node(&arg(0), "removeChild")?;
                self.host.remove_child(parent, child)?;
                Ok(arg(0))
            }
            NativeFn::SetAttribute => {
                let node = self.expect_node(&this, "setAttribute")?;
                self.host
                    .set_attribute(node, &arg(0).to_string(), &arg(1).to_string())?;
                Ok(Value::Undefined)
            }
            NativeFn::GetAttribute => {
                let node = self.expect_node(&this, "getAttribute")?;
                match self.host.get_attribute(node, &arg(0).to_string())? {
                    Some(value) => Ok(Value::Str(value)),
                    None => Ok(Value::Null),
                }
            }
            NativeFn::XhrConstructor => {
                let handle = self.host.xhr_create()?;
                Ok(self.alloc(Obj::native(NativeTag::Xhr(handle))))
            }
            NativeFn::XhrOpen => {
                let xhr = self.expect_xhr(&this)?;
                self.host
                    .xhr_open(xhr, &arg(0).to_string(), &arg(1).to_string())?;
                Ok(Value::Undefined)
            }
            NativeFn::XhrSetRequestHeader => {
                let xhr = self.expect_xhr(&this)?;
                self.host
                    .xhr_set_request_header(xhr, &arg(0).to_string(), &arg(1).to_string())?;
                Ok(Value::Undefined)
            }
            NativeFn::XhrSend => {
                let xhr = self.expect_xhr(&this)?;
                let body = if args.is_empty() {
                    String::new()
                } else {
                    arg(0).to_string()
                };
                let outcome = self.host.xhr_send(xhr, &body)?;
                // Record the response on the XHR object so scripts can read
                // `xhr.status` and `xhr.responseText`.
                if let Value::Object(id) = &this {
                    let obj = self.obj_mut(*id);
                    obj.props.insert(
                        "status".to_string(),
                        Value::Number(f64::from(outcome.status)),
                    );
                    obj.props
                        .insert("responseText".to_string(), Value::Str(outcome.body));
                }
                Ok(Value::Undefined)
            }
            NativeFn::HistoryBack => {
                self.host.history_back()?;
                Ok(Value::Undefined)
            }
            NativeFn::Alert => {
                self.host.alert(&arg(0).to_string());
                Ok(Value::Undefined)
            }
            NativeFn::ConsoleLog => {
                let message = args
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                self.host.log(&message);
                Ok(Value::Undefined)
            }
            NativeFn::ArrayPush => {
                if let Value::Object(id) = &this {
                    let value = arg(0);
                    if let Some(elements) = &mut self.obj_mut(*id).elements {
                        elements.push(value);
                        return Ok(Value::Number(elements.len() as f64));
                    }
                }
                Err(ScriptError::Runtime("push called on a non-array".into()))
            }
            NativeFn::IndexOf => {
                // The receiver string was recorded on the bound function object.
                let receiver = self
                    .obj(function_obj)
                    .props
                    .get("__this")
                    .cloned()
                    .unwrap_or(this);
                let haystack = receiver.to_string();
                let needle = arg(0).to_string();
                let index = haystack
                    .find(&needle)
                    .map(|byte| haystack[..byte].chars().count() as f64)
                    .unwrap_or(-1.0);
                Ok(Value::Number(index))
            }
        }
    }

    fn expect_xhr(&self, value: &Value) -> Result<u64, ScriptError> {
        if let Value::Object(id) = value {
            if let Some(NativeTag::Xhr(handle)) = self.obj(*id).native {
                return Ok(handle);
            }
        }
        Err(ScriptError::Runtime(
            "method must be called on an XMLHttpRequest".into(),
        ))
    }
}

fn strict_eq(left: &Value, right: &Value) -> bool {
    match (left, right) {
        (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
        (Value::Bool(a), Value::Bool(b)) => a == b,
        (Value::Number(a), Value::Number(b)) => a == b,
        (Value::Str(a), Value::Str(b)) => a == b,
        (Value::Object(a), Value::Object(b)) => a == b,
        _ => false,
    }
}

fn loose_eq(left: &Value, right: &Value) -> bool {
    match (left, right) {
        (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
        (Value::Number(_), Value::Str(_))
        | (Value::Str(_), Value::Number(_))
        | (Value::Bool(_), _)
        | (_, Value::Bool(_)) => left.to_number() == right.to_number(),
        _ => strict_eq(left, right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;

    fn run(source: &str) -> Value {
        let mut host = MockHost::new();
        Interpreter::new(&mut host).run(source).unwrap()
    }

    fn run_with(host: &mut MockHost, source: &str) -> Result<Value, ScriptError> {
        Interpreter::new(host).run(source)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("1 + 2 * 3;"), Value::Number(7.0));
        assert_eq!(run("(1 + 2) * 3;"), Value::Number(9.0));
        assert_eq!(run("10 % 3;"), Value::Number(1.0));
        assert_eq!(run("7 / 2;"), Value::Number(3.5));
        assert_eq!(run("-3 + +2;"), Value::Number(-1.0));
    }

    #[test]
    fn string_concatenation_and_comparison() {
        assert_eq!(run("'a' + 'b' + 1;"), Value::Str("ab1".into()));
        assert_eq!(run("1 + '2';"), Value::Str("12".into()));
        assert_eq!(run("'abc'.length;"), Value::Number(3.0));
        assert_eq!(run("'hello'.indexOf('ll');"), Value::Number(2.0));
        assert_eq!(run("'hello'.indexOf('z');"), Value::Number(-1.0));
        assert_eq!(run("'a' < 'b';"), Value::Bool(true));
    }

    #[test]
    fn equality_semantics() {
        assert_eq!(run("1 == '1';"), Value::Bool(true));
        assert_eq!(run("1 === '1';"), Value::Bool(false));
        assert_eq!(run("null == undefined;"), Value::Bool(true));
        assert_eq!(run("null === undefined;"), Value::Bool(false));
        assert_eq!(run("2 !== 3;"), Value::Bool(true));
    }

    #[test]
    fn variables_functions_and_closures() {
        let source = r#"
            function makeCounter(start) {
                var count = start;
                return function() { count += 1; return count; };
            }
            var next = makeCounter(10);
            next();
            next();
        "#;
        assert_eq!(run(source), Value::Number(12.0));
    }

    #[test]
    fn control_flow_loops() {
        let source = r#"
            var total = 0;
            for (var i = 1; i <= 10; i++) {
                if (i % 2 === 0) { continue; }
                total += i;
            }
            var n = 0;
            while (true) { n++; if (n >= 3) { break; } }
            total + n;
        "#;
        assert_eq!(run(source), Value::Number(28.0));
    }

    #[test]
    fn objects_and_arrays() {
        let source = r#"
            var cfg = {name: 'escudo', rings: [0, 1, 2, 3]};
            cfg.rings.push(4);
            cfg.count = cfg.rings.length;
            cfg.name + ':' + cfg.count + ':' + cfg.rings[4];
        "#;
        assert_eq!(run(source), Value::Str("escudo:5:4".into()));
    }

    #[test]
    fn typeof_and_ternary() {
        assert_eq!(run("typeof 3;"), Value::Str("number".into()));
        assert_eq!(run("typeof 'x';"), Value::Str("string".into()));
        assert_eq!(run("typeof alert;"), Value::Str("function".into()));
        assert_eq!(run("1 < 2 ? 'yes' : 'no';"), Value::Str("yes".into()));
    }

    #[test]
    fn dom_access_via_the_host() {
        let mut host = MockHost::new();
        host.add_element("msg", "div", "old");
        let value = run_with(
            &mut host,
            "var el = document.getElementById('msg'); el.innerHTML = el.innerHTML + '!'; el.innerHTML;",
        )
        .unwrap();
        assert_eq!(value, Value::Str("old!".into()));
        assert_eq!(host.inner_html_of("msg"), Some("old!"));
    }

    #[test]
    fn dom_creation_and_attributes() {
        let mut host = MockHost::new();
        host.add_element("body", "body", "");
        let source = r#"
            var p = document.createElement('p');
            p.setAttribute('id', 'new');
            document.body.appendChild(p);
            p.getAttribute('id');
        "#;
        assert_eq!(
            run_with(&mut host, source).unwrap(),
            Value::Str("new".into())
        );
    }

    #[test]
    fn cookie_read_and_write() {
        let mut host = MockHost::new();
        host.set_cookie_string("sid=abc");
        let value = run_with(
            &mut host,
            "document.cookie = 'theme=dark'; document.cookie;",
        )
        .unwrap();
        assert_eq!(value, Value::Str("sid=abc; theme=dark".into()));
    }

    #[test]
    fn xhr_roundtrip() {
        let mut host = MockHost::new();
        host.xhr_response = "server says hi".to_string();
        let source = r#"
            var xhr = new XMLHttpRequest();
            xhr.open('POST', 'http://app.example/api');
            xhr.send('payload');
            xhr.status + ':' + xhr.responseText;
        "#;
        assert_eq!(
            run_with(&mut host, source).unwrap(),
            Value::Str("200:server says hi".into())
        );
    }

    #[test]
    fn access_denied_from_the_host_aborts_the_script() {
        struct DenyingHost(MockHost);
        impl Host for DenyingHost {
            fn get_element_by_id(
                &mut self,
                id: &str,
            ) -> Result<Option<crate::host::HostNodeId>, crate::host::HostError> {
                self.0.get_element_by_id(id)
            }
            fn get_elements_by_tag_name(
                &mut self,
                tag: &str,
            ) -> Result<Vec<crate::host::HostNodeId>, crate::host::HostError> {
                self.0.get_elements_by_tag_name(tag)
            }
            fn create_element(
                &mut self,
                tag: &str,
            ) -> Result<crate::host::HostNodeId, crate::host::HostError> {
                self.0.create_element(tag)
            }
            fn create_text_node(
                &mut self,
                text: &str,
            ) -> Result<crate::host::HostNodeId, crate::host::HostError> {
                self.0.create_text_node(text)
            }
            fn document_body(
                &mut self,
            ) -> Result<Option<crate::host::HostNodeId>, crate::host::HostError> {
                self.0.document_body()
            }
            fn document_write(&mut self, html: &str) -> Result<(), crate::host::HostError> {
                self.0.document_write(html)
            }
            fn append_child(
                &mut self,
                parent: crate::host::HostNodeId,
                child: crate::host::HostNodeId,
            ) -> Result<(), crate::host::HostError> {
                self.0.append_child(parent, child)
            }
            fn remove_child(
                &mut self,
                parent: crate::host::HostNodeId,
                child: crate::host::HostNodeId,
            ) -> Result<(), crate::host::HostError> {
                self.0.remove_child(parent, child)
            }
            fn set_attribute(
                &mut self,
                node: crate::host::HostNodeId,
                name: &str,
                value: &str,
            ) -> Result<(), crate::host::HostError> {
                self.0.set_attribute(node, name, value)
            }
            fn get_attribute(
                &mut self,
                node: crate::host::HostNodeId,
                name: &str,
            ) -> Result<Option<String>, crate::host::HostError> {
                self.0.get_attribute(node, name)
            }
            fn get_inner_html(
                &mut self,
                node: crate::host::HostNodeId,
            ) -> Result<String, crate::host::HostError> {
                self.0.get_inner_html(node)
            }
            fn set_inner_html(
                &mut self,
                node: crate::host::HostNodeId,
                html: &str,
            ) -> Result<(), crate::host::HostError> {
                self.0.set_inner_html(node, html)
            }
            fn get_text_content(
                &mut self,
                node: crate::host::HostNodeId,
            ) -> Result<String, crate::host::HostError> {
                self.0.get_text_content(node)
            }
            fn tag_name(
                &mut self,
                node: crate::host::HostNodeId,
            ) -> Result<String, crate::host::HostError> {
                self.0.tag_name(node)
            }
            fn cookie_get(&mut self) -> Result<String, crate::host::HostError> {
                Err(crate::host::HostError::AccessDenied(
                    "ring rule: principal ring 3 is outside cookie ring 1".into(),
                ))
            }
            fn cookie_set(&mut self, cookie: &str) -> Result<(), crate::host::HostError> {
                self.0.cookie_set(cookie)
            }
            fn xhr_create(&mut self) -> Result<crate::host::HostXhrId, crate::host::HostError> {
                self.0.xhr_create()
            }
            fn xhr_open(
                &mut self,
                xhr: crate::host::HostXhrId,
                method: &str,
                url: &str,
            ) -> Result<(), crate::host::HostError> {
                self.0.xhr_open(xhr, method, url)
            }
            fn xhr_set_request_header(
                &mut self,
                xhr: crate::host::HostXhrId,
                name: &str,
                value: &str,
            ) -> Result<(), crate::host::HostError> {
                self.0.xhr_set_request_header(xhr, name, value)
            }
            fn xhr_send(
                &mut self,
                xhr: crate::host::HostXhrId,
                body: &str,
            ) -> Result<crate::host::XhrOutcome, crate::host::HostError> {
                self.0.xhr_send(xhr, body)
            }
            fn history_length(&mut self) -> Result<usize, crate::host::HostError> {
                self.0.history_length()
            }
            fn history_back(&mut self) -> Result<(), crate::host::HostError> {
                self.0.history_back()
            }
            fn log(&mut self, message: &str) {
                self.0.log(message);
            }
            fn alert(&mut self, message: &str) {
                self.0.alert(message);
            }
        }

        let mut host = DenyingHost(MockHost::new());
        let err = Interpreter::new(&mut host)
            .run("var stolen = document.cookie; alert(stolen);")
            .unwrap_err();
        assert!(err.is_access_denied());
        // The alert never ran: the script aborted at the denial.
        assert!(host.0.messages.is_empty());
    }

    #[test]
    fn runtime_errors_are_reported() {
        let mut host = MockHost::new();
        assert!(matches!(
            run_with(&mut host, "missing();"),
            Err(ScriptError::Runtime(_))
        ));
        assert!(matches!(
            run_with(&mut host, "var x = 3; x();"),
            Err(ScriptError::Runtime(_))
        ));
        assert!(matches!(
            run_with(&mut host, "undefinedVariable + 1;"),
            Err(ScriptError::Runtime(_))
        ));
        assert!(matches!(
            run_with(&mut host, "null.property;"),
            Err(ScriptError::Runtime(_))
        ));
    }

    #[test]
    fn infinite_loops_hit_the_step_limit() {
        let mut host = MockHost::new();
        let err = Interpreter::new(&mut host)
            .with_step_limit(10_000)
            .run("while (true) { var x = 1; }")
            .unwrap_err();
        assert_eq!(err, ScriptError::StepLimitExceeded);
    }

    #[test]
    fn console_log_and_alert_reach_the_host() {
        let mut host = MockHost::new();
        run_with(&mut host, "console.log('a', 1); alert('danger');").unwrap();
        assert_eq!(
            host.messages,
            vec!["a 1".to_string(), "alert: danger".to_string()]
        );
    }

    #[test]
    fn document_write_reaches_the_host() {
        let mut host = MockHost::new();
        run_with(&mut host, "document.write('<p>injected</p>');").unwrap();
        assert_eq!(host.written, vec!["<p>injected</p>".to_string()]);
    }

    #[test]
    fn update_expressions() {
        assert_eq!(run("var i = 5; i++; i;"), Value::Number(6.0));
        assert_eq!(run("var i = 5; var j = i++; j;"), Value::Number(5.0));
        assert_eq!(run("var i = 5; var j = ++i; j;"), Value::Number(6.0));
        assert_eq!(run("var i = 5; i--; --i; i;"), Value::Number(3.0));
    }

    #[test]
    fn implicit_globals_are_created_on_assignment() {
        assert_eq!(run("function f() { g = 7; } f(); g;"), Value::Number(7.0));
    }

    #[test]
    fn history_is_reachable() {
        assert_eq!(run("history.length;"), Value::Number(1.0));
        assert_eq!(run("window.history.length;"), Value::Number(1.0));
    }
}
