//! The host interface between the interpreter and the embedding browser.
//!
//! Every effectful operation a script can perform is a method on [`Host`]. The ESCUDO
//! browser implements this trait and interposes its reference monitor on each call;
//! [`HostError::AccessDenied`] is how a policy denial reaches the script (it becomes a
//! [`ScriptError::AccessDenied`](crate::ScriptError::AccessDenied)).
//!
//! A [`MockHost`] is provided for unit-testing scripts without a browser.

use std::collections::HashMap;
use std::fmt;

/// An opaque handle to a DOM node owned by the host.
pub type HostNodeId = u64;

/// An opaque handle to an XMLHttpRequest owned by the host.
pub type HostXhrId = u64;

/// The result of sending an XMLHttpRequest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XhrOutcome {
    /// HTTP status code of the response.
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Errors a host call can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The reference monitor denied the access (the reason names the violated rule).
    AccessDenied(String),
    /// The referenced node/object does not exist.
    NotFound(String),
    /// The operation is not supported by this host.
    Unsupported(String),
    /// A network-level failure (unknown host, …).
    Network(String),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::AccessDenied(r) => write!(f, "access denied: {r}"),
            HostError::NotFound(r) => write!(f, "not found: {r}"),
            HostError::Unsupported(r) => write!(f, "unsupported: {r}"),
            HostError::Network(r) => write!(f, "network error: {r}"),
        }
    }
}

impl std::error::Error for HostError {}

/// The browser-side API surface exposed to scripts.
///
/// Methods mirror the DOM/cookie/XHR/history operations identified as objects in the
/// paper's Table 1. Implementations decide, per call, whether the current principal may
/// perform the operation.
pub trait Host {
    // ------------------------------------------------------------------ DOM
    /// `document.getElementById`.
    fn get_element_by_id(&mut self, id: &str) -> Result<Option<HostNodeId>, HostError>;
    /// `document.getElementsByTagName`.
    fn get_elements_by_tag_name(&mut self, tag: &str) -> Result<Vec<HostNodeId>, HostError>;
    /// `document.createElement`.
    fn create_element(&mut self, tag: &str) -> Result<HostNodeId, HostError>;
    /// `document.createTextNode`.
    fn create_text_node(&mut self, text: &str) -> Result<HostNodeId, HostError>;
    /// The `document.body` element.
    fn document_body(&mut self) -> Result<Option<HostNodeId>, HostError>;
    /// `document.write`.
    fn document_write(&mut self, html: &str) -> Result<(), HostError>;
    /// `parent.appendChild(child)`.
    fn append_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError>;
    /// `parent.removeChild(child)`.
    fn remove_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError>;
    /// `node.setAttribute(name, value)`.
    fn set_attribute(&mut self, node: HostNodeId, name: &str, value: &str)
        -> Result<(), HostError>;
    /// `node.getAttribute(name)`.
    fn get_attribute(&mut self, node: HostNodeId, name: &str) -> Result<Option<String>, HostError>;
    /// The `node.innerHTML` getter.
    fn get_inner_html(&mut self, node: HostNodeId) -> Result<String, HostError>;
    /// The `node.innerHTML` setter.
    fn set_inner_html(&mut self, node: HostNodeId, html: &str) -> Result<(), HostError>;
    /// The `node.textContent` getter.
    fn get_text_content(&mut self, node: HostNodeId) -> Result<String, HostError>;
    /// The `node.tagName` getter.
    fn tag_name(&mut self, node: HostNodeId) -> Result<String, HostError>;

    // ------------------------------------------------------------------ cookies
    /// The `document.cookie` getter.
    fn cookie_get(&mut self) -> Result<String, HostError>;
    /// The `document.cookie` setter.
    fn cookie_set(&mut self, cookie: &str) -> Result<(), HostError>;

    // ------------------------------------------------------------------ XHR
    /// `new XMLHttpRequest()`.
    fn xhr_create(&mut self) -> Result<HostXhrId, HostError>;
    /// `xhr.open(method, url)`.
    fn xhr_open(&mut self, xhr: HostXhrId, method: &str, url: &str) -> Result<(), HostError>;
    /// `xhr.setRequestHeader(name, value)`.
    fn xhr_set_request_header(
        &mut self,
        xhr: HostXhrId,
        name: &str,
        value: &str,
    ) -> Result<(), HostError>;
    /// `xhr.send(body)` — synchronous in this model; returns the response.
    fn xhr_send(&mut self, xhr: HostXhrId, body: &str) -> Result<XhrOutcome, HostError>;

    // ------------------------------------------------------------------ browser state
    /// `history.length`.
    fn history_length(&mut self) -> Result<usize, HostError>;
    /// `history.back()`.
    fn history_back(&mut self) -> Result<(), HostError>;

    // ------------------------------------------------------------------ misc
    /// `console.log` / diagnostics.
    fn log(&mut self, message: &str);
    /// `alert(message)`.
    fn alert(&mut self, message: &str);
}

/// A self-contained [`Host`] for testing scripts without a browser: a flat set of
/// named pseudo-elements, an in-memory cookie string, canned XHR responses, and a log.
#[derive(Debug, Default)]
pub struct MockHost {
    next_node: u64,
    next_xhr: u64,
    nodes: HashMap<HostNodeId, MockNode>,
    by_id: HashMap<String, HostNodeId>,
    cookie: String,
    xhrs: HashMap<HostXhrId, (String, String)>,
    /// Canned response body returned by every `xhr.send`.
    pub xhr_response: String,
    /// Messages passed to `console.log` and `alert`.
    pub messages: Vec<String>,
    /// Text passed to `document.write`.
    pub written: Vec<String>,
}

#[derive(Debug, Clone)]
struct MockNode {
    tag: String,
    attrs: HashMap<String, String>,
    inner_html: String,
    children: Vec<HostNodeId>,
}

impl MockHost {
    /// Creates an empty mock host.
    #[must_use]
    pub fn new() -> Self {
        MockHost {
            xhr_response: "ok".to_string(),
            ..MockHost::default()
        }
    }

    /// Adds a pseudo-element reachable via `document.getElementById(id)`.
    pub fn add_element(&mut self, id: &str, tag: &str, inner_html: &str) -> HostNodeId {
        let node_id = self.alloc_node(tag);
        if let Some(node) = self.nodes.get_mut(&node_id) {
            node.inner_html = inner_html.to_string();
            node.attrs.insert("id".to_string(), id.to_string());
        }
        self.by_id.insert(id.to_string(), node_id);
        node_id
    }

    /// Sets the cookie string returned by `document.cookie`.
    pub fn set_cookie_string(&mut self, cookie: &str) {
        self.cookie = cookie.to_string();
    }

    /// The current cookie string.
    #[must_use]
    pub fn cookie_string(&self) -> &str {
        &self.cookie
    }

    /// Reads back a node's innerHTML (test observation).
    #[must_use]
    pub fn inner_html_of(&self, id: &str) -> Option<&str> {
        let node_id = self.by_id.get(id)?;
        self.nodes.get(node_id).map(|n| n.inner_html.as_str())
    }

    fn alloc_node(&mut self, tag: &str) -> HostNodeId {
        self.next_node += 1;
        let id = self.next_node;
        self.nodes.insert(
            id,
            MockNode {
                tag: tag.to_string(),
                attrs: HashMap::new(),
                inner_html: String::new(),
                children: Vec::new(),
            },
        );
        id
    }

    fn node_mut(&mut self, node: HostNodeId) -> Result<&mut MockNode, HostError> {
        self.nodes
            .get_mut(&node)
            .ok_or_else(|| HostError::NotFound(format!("node {node}")))
    }
}

impl Host for MockHost {
    fn get_element_by_id(&mut self, id: &str) -> Result<Option<HostNodeId>, HostError> {
        Ok(self.by_id.get(id).copied())
    }

    fn get_elements_by_tag_name(&mut self, tag: &str) -> Result<Vec<HostNodeId>, HostError> {
        Ok(self
            .nodes
            .iter()
            .filter(|(_, n)| n.tag.eq_ignore_ascii_case(tag))
            .map(|(id, _)| *id)
            .collect())
    }

    fn create_element(&mut self, tag: &str) -> Result<HostNodeId, HostError> {
        Ok(self.alloc_node(tag))
    }

    fn create_text_node(&mut self, text: &str) -> Result<HostNodeId, HostError> {
        let id = self.alloc_node("#text");
        if let Some(node) = self.nodes.get_mut(&id) {
            node.inner_html = text.to_string();
        }
        Ok(id)
    }

    fn document_body(&mut self) -> Result<Option<HostNodeId>, HostError> {
        Ok(self.by_id.get("body").copied())
    }

    fn document_write(&mut self, html: &str) -> Result<(), HostError> {
        self.written.push(html.to_string());
        Ok(())
    }

    fn append_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError> {
        if !self.nodes.contains_key(&child) {
            return Err(HostError::NotFound(format!("node {child}")));
        }
        self.node_mut(parent)?.children.push(child);
        Ok(())
    }

    fn remove_child(&mut self, parent: HostNodeId, child: HostNodeId) -> Result<(), HostError> {
        let parent_node = self.node_mut(parent)?;
        parent_node.children.retain(|&c| c != child);
        Ok(())
    }

    fn set_attribute(
        &mut self,
        node: HostNodeId,
        name: &str,
        value: &str,
    ) -> Result<(), HostError> {
        self.node_mut(node)?
            .attrs
            .insert(name.to_ascii_lowercase(), value.to_string());
        Ok(())
    }

    fn get_attribute(&mut self, node: HostNodeId, name: &str) -> Result<Option<String>, HostError> {
        Ok(self
            .node_mut(node)?
            .attrs
            .get(&name.to_ascii_lowercase())
            .cloned())
    }

    fn get_inner_html(&mut self, node: HostNodeId) -> Result<String, HostError> {
        Ok(self.node_mut(node)?.inner_html.clone())
    }

    fn set_inner_html(&mut self, node: HostNodeId, html: &str) -> Result<(), HostError> {
        self.node_mut(node)?.inner_html = html.to_string();
        Ok(())
    }

    fn get_text_content(&mut self, node: HostNodeId) -> Result<String, HostError> {
        Ok(self.node_mut(node)?.inner_html.clone())
    }

    fn tag_name(&mut self, node: HostNodeId) -> Result<String, HostError> {
        Ok(self.node_mut(node)?.tag.to_ascii_uppercase())
    }

    fn cookie_get(&mut self) -> Result<String, HostError> {
        Ok(self.cookie.clone())
    }

    fn cookie_set(&mut self, cookie: &str) -> Result<(), HostError> {
        if self.cookie.is_empty() {
            self.cookie = cookie.to_string();
        } else {
            self.cookie = format!("{}; {}", self.cookie, cookie);
        }
        Ok(())
    }

    fn xhr_create(&mut self) -> Result<HostXhrId, HostError> {
        self.next_xhr += 1;
        self.xhrs
            .insert(self.next_xhr, (String::new(), String::new()));
        Ok(self.next_xhr)
    }

    fn xhr_open(&mut self, xhr: HostXhrId, method: &str, url: &str) -> Result<(), HostError> {
        let entry = self
            .xhrs
            .get_mut(&xhr)
            .ok_or_else(|| HostError::NotFound(format!("xhr {xhr}")))?;
        *entry = (method.to_string(), url.to_string());
        Ok(())
    }

    fn xhr_set_request_header(
        &mut self,
        _xhr: HostXhrId,
        _name: &str,
        _value: &str,
    ) -> Result<(), HostError> {
        Ok(())
    }

    fn xhr_send(&mut self, xhr: HostXhrId, _body: &str) -> Result<XhrOutcome, HostError> {
        if !self.xhrs.contains_key(&xhr) {
            return Err(HostError::NotFound(format!("xhr {xhr}")));
        }
        Ok(XhrOutcome {
            status: 200,
            body: self.xhr_response.clone(),
        })
    }

    fn history_length(&mut self) -> Result<usize, HostError> {
        Ok(1)
    }

    fn history_back(&mut self) -> Result<(), HostError> {
        Ok(())
    }

    fn log(&mut self, message: &str) {
        self.messages.push(message.to_string());
    }

    fn alert(&mut self, message: &str) {
        self.messages.push(format!("alert: {message}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_host_supports_the_dom_surface() {
        let mut host = MockHost::new();
        let body = host.add_element("body", "body", "");
        let found = host.get_element_by_id("body").unwrap();
        assert_eq!(found, Some(body));
        assert_eq!(host.get_element_by_id("missing").unwrap(), None);

        let div = host.create_element("div").unwrap();
        host.set_attribute(div, "Class", "x").unwrap();
        assert_eq!(
            host.get_attribute(div, "class").unwrap().as_deref(),
            Some("x")
        );
        host.append_child(body, div).unwrap();
        host.set_inner_html(div, "<b>hi</b>").unwrap();
        assert_eq!(host.get_inner_html(div).unwrap(), "<b>hi</b>");
        assert_eq!(host.tag_name(div).unwrap(), "DIV");
        assert_eq!(host.get_elements_by_tag_name("div").unwrap(), vec![div]);
        host.remove_child(body, div).unwrap();
    }

    #[test]
    fn mock_host_cookies_and_xhr() {
        let mut host = MockHost::new();
        host.set_cookie_string("sid=1");
        assert_eq!(host.cookie_get().unwrap(), "sid=1");
        host.cookie_set("theme=dark").unwrap();
        assert_eq!(host.cookie_string(), "sid=1; theme=dark");

        let xhr = host.xhr_create().unwrap();
        host.xhr_open(xhr, "GET", "/api").unwrap();
        host.xhr_response = "payload".to_string();
        let outcome = host.xhr_send(xhr, "").unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(outcome.body, "payload");
        assert!(host.xhr_send(999, "").is_err());
    }

    #[test]
    fn missing_nodes_are_not_found_errors() {
        let mut host = MockHost::new();
        assert!(matches!(
            host.set_attribute(42, "a", "b"),
            Err(HostError::NotFound(_))
        ));
        assert!(matches!(
            host.get_inner_html(42),
            Err(HostError::NotFound(_))
        ));
    }

    #[test]
    fn host_error_display() {
        assert!(HostError::AccessDenied("ring rule".into())
            .to_string()
            .contains("access denied"));
        assert!(HostError::Network("no route".into())
            .to_string()
            .contains("network"));
    }
}
