//! The tokenizer for the ECMAScript subset.

use std::fmt;

use crate::error::ScriptError;

/// A script token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes removed, escapes processed).
    Str(String),
    /// Identifier (not a keyword).
    Ident(String),
    // Keywords.
    /// `var`
    Var,
    /// `let`
    Let,
    /// `const`
    Const,
    /// `function`
    Function,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// `new`
    New,
    /// `typeof`
    Typeof,
    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `===`
    EqEqEq,
    /// `!==`
    NotEqEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Ident(name) => write!(f, "{name}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Tokenizes a complete script.
///
/// # Errors
///
/// Returns [`ScriptError::Lex`] for unterminated strings/comments or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<Tok>, ScriptError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= chars.len() {
                    return Err(ScriptError::Lex {
                        message: "unterminated block comment".into(),
                        position: start,
                    });
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Strings.
        if c == '"' || c == '\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut value = String::new();
            loop {
                if i >= chars.len() {
                    return Err(ScriptError::Lex {
                        message: "unterminated string literal".into(),
                        position: start,
                    });
                }
                let sc = chars[i];
                if sc == quote {
                    i += 1;
                    break;
                }
                if sc == '\\' {
                    i += 1;
                    let escaped = chars.get(i).copied().ok_or(ScriptError::Lex {
                        message: "unterminated escape sequence".into(),
                        position: start,
                    })?;
                    value.push(match escaped {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        other => other,
                    });
                    i += 1;
                    continue;
                }
                value.push(sc);
                i += 1;
            }
            tokens.push(Tok::Str(value));
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let number = text.parse::<f64>().map_err(|_| ScriptError::Lex {
                message: format!("invalid number literal `{text}`"),
                position: start,
            })?;
            tokens.push(Tok::Number(number));
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
            {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            tokens.push(keyword_or_ident(&word));
            continue;
        }
        // Operators and punctuation (longest match first).
        let three: String = chars[i..chars.len().min(i + 3)].iter().collect();
        if three == "===" {
            tokens.push(Tok::EqEqEq);
            i += 3;
            continue;
        }
        if three == "!==" {
            tokens.push(Tok::NotEqEq);
            i += 3;
            continue;
        }
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let matched_two = match two.as_str() {
            "==" => Some(Tok::EqEq),
            "!=" => Some(Tok::NotEq),
            "<=" => Some(Tok::Le),
            ">=" => Some(Tok::Ge),
            "&&" => Some(Tok::AndAnd),
            "||" => Some(Tok::OrOr),
            "++" => Some(Tok::PlusPlus),
            "--" => Some(Tok::MinusMinus),
            "+=" => Some(Tok::PlusAssign),
            "-=" => Some(Tok::MinusAssign),
            _ => None,
        };
        if let Some(token) = matched_two {
            tokens.push(token);
            i += 2;
            continue;
        }
        let single = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            ':' => Tok::Colon,
            '?' => Tok::Question,
            '=' => Tok::Assign,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '<' => Tok::Lt,
            '>' => Tok::Gt,
            '!' => Tok::Not,
            other => {
                return Err(ScriptError::Lex {
                    message: format!("unexpected character `{other}`"),
                    position: i,
                })
            }
        };
        tokens.push(single);
        i += 1;
    }

    tokens.push(Tok::Eof);
    Ok(tokens)
}

fn keyword_or_ident(word: &str) -> Tok {
    match word {
        "var" => Tok::Var,
        "let" => Tok::Let,
        "const" => Tok::Const,
        "function" => Tok::Function,
        "return" => Tok::Return,
        "if" => Tok::If,
        "else" => Tok::Else,
        "while" => Tok::While,
        "for" => Tok::For,
        "break" => Tok::Break,
        "continue" => Tok::Continue,
        "true" => Tok::True,
        "false" => Tok::False,
        "null" => Tok::Null,
        "undefined" => Tok::Undefined,
        "new" => Tok::New,
        "typeof" => Tok::Typeof,
        _ => Tok::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_representative_script() {
        let tokens =
            tokenize("var x = document.getElementById('main'); x.innerHTML += \"<b>hi</b>\";")
                .unwrap();
        assert!(tokens.contains(&Tok::Var));
        assert!(tokens.contains(&Tok::Ident("document".into())));
        assert!(tokens.contains(&Tok::Dot));
        assert!(tokens.contains(&Tok::Str("main".into())));
        assert!(tokens.contains(&Tok::PlusAssign));
        assert_eq!(*tokens.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn numbers_and_operators() {
        let tokens = tokenize("1 + 2.5 * 3 === 8.5").unwrap();
        assert_eq!(
            tokens,
            vec![
                Tok::Number(1.0),
                Tok::Plus,
                Tok::Number(2.5),
                Tok::Star,
                Tok::Number(3.0),
                Tok::EqEqEq,
                Tok::Number(8.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let tokens = tokenize(r#"'a\'b' "c\n\t\\d""#).unwrap();
        assert_eq!(tokens[0], Tok::Str("a'b".into()));
        assert_eq!(tokens[1], Tok::Str("c\n\t\\d".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = tokenize("var a = 1; // trailing\n/* block\ncomment */ var b = 2;").unwrap();
        let idents: Vec<&Tok> = tokens
            .iter()
            .filter(|t| matches!(t, Tok::Ident(_)))
            .collect();
        assert_eq!(idents.len(), 2);
    }

    #[test]
    fn keywords_are_distinguished_from_identifiers() {
        let tokens =
            tokenize("function functionName(newValue) { return typeof newValue; }").unwrap();
        assert_eq!(tokens[0], Tok::Function);
        assert_eq!(tokens[1], Tok::Ident("functionName".into()));
        assert!(tokens.contains(&Tok::Ident("newValue".into())));
        assert!(tokens.contains(&Tok::Typeof));
    }

    #[test]
    fn errors_for_unterminated_constructs() {
        assert!(matches!(tokenize("'open"), Err(ScriptError::Lex { .. })));
        assert!(matches!(tokenize("/* open"), Err(ScriptError::Lex { .. })));
        assert!(matches!(
            tokenize("var x = @;"),
            Err(ScriptError::Lex { .. })
        ));
    }

    #[test]
    fn increment_decrement_and_comparisons() {
        let tokens = tokenize("i++; j--; a <= b; c >= d; e != f; g !== h;").unwrap();
        assert!(tokens.contains(&Tok::PlusPlus));
        assert!(tokens.contains(&Tok::MinusMinus));
        assert!(tokens.contains(&Tok::Le));
        assert!(tokens.contains(&Tok::Ge));
        assert!(tokens.contains(&Tok::NotEq));
        assert!(tokens.contains(&Tok::NotEqEq));
    }
}
