//! Traversal iterators over the document tree.

use crate::document::Document;
use crate::node::NodeId;

/// Iterator over the direct children of a node, in document order.
#[derive(Debug, Clone)]
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Children<'a> {
    pub(crate) fn new(doc: &'a Document, parent: NodeId) -> Self {
        Children {
            doc,
            next: doc.first_child(parent),
        }
    }
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.next_sibling(current);
        Some(current)
    }
}

/// Pre-order iterator over all descendants of a node, excluding the node itself.
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(doc: &'a Document, root: NodeId) -> Self {
        let mut stack: Vec<NodeId> = doc.children(root).collect();
        stack.reverse();
        Descendants { doc, stack }
    }
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.stack.pop()?;
        let children: Vec<NodeId> = self.doc.children(current).collect();
        for child in children.into_iter().rev() {
            self.stack.push(child);
        }
        Some(current)
    }
}

/// Iterator over the ancestors of a node, nearest first, excluding the node itself.
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(doc: &'a Document, node: NodeId) -> Self {
        Ancestors {
            doc,
            next: doc.parent(node),
        }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.doc.parent(current);
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterators_are_empty_for_leaf_nodes() {
        let mut doc = Document::new();
        let el = doc.create_element("p");
        doc.append_child(doc.root(), el).unwrap();
        let t = doc.create_text("x");
        doc.append_child(el, t).unwrap();

        assert_eq!(doc.children(t).count(), 0);
        assert_eq!(doc.descendants(t).count(), 0);
        assert_eq!(doc.ancestors(doc.root()).count(), 0);
    }

    #[test]
    fn descendants_cover_a_deep_tree() {
        let mut doc = Document::new();
        let mut parent = doc.root();
        let mut created = Vec::new();
        for depth in 0..50 {
            let el = doc.create_element(if depth % 2 == 0 { "div" } else { "span" });
            doc.append_child(parent, el).unwrap();
            created.push(el);
            parent = el;
        }
        let visited: Vec<NodeId> = doc.descendants(doc.root()).collect();
        assert_eq!(visited, created);
        assert_eq!(doc.ancestors(*created.last().unwrap()).count(), 50);
    }

    #[test]
    fn wide_trees_are_visited_left_to_right() {
        let mut doc = Document::new();
        let parent = doc.create_element("ul");
        doc.append_child(doc.root(), parent).unwrap();
        let mut items = Vec::new();
        for _ in 0..20 {
            let li = doc.create_element("li");
            doc.append_child(parent, li).unwrap();
            items.push(li);
        }
        let children: Vec<NodeId> = doc.children(parent).collect();
        assert_eq!(children, items);
        // Descendants of the root: the ul first, then each li in order.
        let descendants: Vec<NodeId> = doc.descendants(doc.root()).collect();
        assert_eq!(descendants[0], parent);
        assert_eq!(&descendants[1..], items.as_slice());
    }
}
