//! HTML serialization of DOM subtrees.

use crate::document::Document;
use crate::node::{NodeData, NodeId};

/// Tags serialized without a closing tag and never given children.
pub const VOID_ELEMENTS: [&str; 14] = [
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Tags whose text content is serialized raw (no entity escaping), matching how the
/// parser treats them.
pub const RAW_TEXT_ELEMENTS: [&str; 4] = ["script", "style", "textarea", "title"];

/// `true` when `tag` is a void element.
#[must_use]
pub fn is_void_element(tag: &str) -> bool {
    VOID_ELEMENTS.iter().any(|t| t.eq_ignore_ascii_case(tag))
}

/// `true` when `tag` is a raw-text element.
#[must_use]
pub fn is_raw_text_element(tag: &str) -> bool {
    RAW_TEXT_ELEMENTS
        .iter()
        .any(|t| t.eq_ignore_ascii_case(tag))
}

/// Escapes text-node content.
#[must_use]
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quoted serialization).
#[must_use]
pub fn escape_attribute(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            _ => out.push(c),
        }
    }
    out
}

impl Document {
    /// Serializes a node and its subtree to HTML.
    #[must_use]
    pub fn outer_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out, false);
        out
    }

    /// Serializes the children of a node to HTML (the DOM `innerHTML` getter).
    #[must_use]
    pub fn inner_html(&self, id: NodeId) -> String {
        let raw = matches!(self.tag_name(id), Some(tag) if is_raw_text_element(tag));
        let mut out = String::new();
        for child in self.children(id) {
            self.write_node(child, &mut out, raw);
        }
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String, raw_text: bool) {
        match self.data(id) {
            NodeData::Document => {
                for child in self.children(id) {
                    self.write_node(child, out, false);
                }
            }
            NodeData::Doctype(name) => {
                out.push_str("<!DOCTYPE ");
                out.push_str(name);
                out.push('>');
            }
            NodeData::Comment(text) => {
                out.push_str("<!--");
                out.push_str(text);
                out.push_str("-->");
            }
            NodeData::Text(text) => {
                if raw_text {
                    out.push_str(text);
                } else {
                    out.push_str(&escape_text(text));
                }
            }
            NodeData::Element(element) => {
                out.push('<');
                out.push_str(&element.tag);
                for (name, value) in &element.attrs {
                    out.push(' ');
                    out.push_str(name);
                    out.push_str("=\"");
                    out.push_str(&escape_attribute(value));
                    out.push('"');
                }
                out.push('>');
                if is_void_element(&element.tag) {
                    return;
                }
                let raw = is_raw_text_element(&element.tag);
                for child in self.children(id) {
                    self.write_node(child, out, raw);
                }
                out.push_str("</");
                out.push_str(&element.tag);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_elements_attributes_and_text() {
        let mut doc = Document::new();
        let div = doc.create_element_with_attrs("div", &[("id", "x"), ("ring", "2")]);
        doc.append_child(doc.root(), div).unwrap();
        let t = doc.create_text("a < b & c");
        doc.append_child(div, t).unwrap();
        assert_eq!(
            doc.outer_html(div),
            "<div id=\"x\" ring=\"2\">a &lt; b &amp; c</div>"
        );
        assert_eq!(doc.inner_html(div), "a &lt; b &amp; c");
    }

    #[test]
    fn void_elements_have_no_closing_tag() {
        let mut doc = Document::new();
        let img = doc.create_element_with_attrs("img", &[("src", "http://x.example/a.png")]);
        doc.append_child(doc.root(), img).unwrap();
        assert_eq!(doc.outer_html(img), "<img src=\"http://x.example/a.png\">");
    }

    #[test]
    fn attribute_values_are_quoted_and_escaped() {
        let mut doc = Document::new();
        let a = doc.create_element_with_attrs("a", &[("href", "/q?a=1&b=\"two\"")]);
        doc.append_child(doc.root(), a).unwrap();
        assert_eq!(
            doc.outer_html(a),
            "<a href=\"/q?a=1&amp;b=&quot;two&quot;\"></a>"
        );
    }

    #[test]
    fn script_content_is_not_entity_escaped() {
        let mut doc = Document::new();
        let script = doc.create_element("script");
        doc.append_child(doc.root(), script).unwrap();
        let code = doc.create_text("if (a < b && c > d) { run(); }");
        doc.append_child(script, code).unwrap();
        assert_eq!(
            doc.outer_html(script),
            "<script>if (a < b && c > d) { run(); }</script>"
        );
        assert_eq!(doc.inner_html(script), "if (a < b && c > d) { run(); }");
    }

    #[test]
    fn comments_and_doctype_roundtrip() {
        let mut doc = Document::new();
        let dt = doc.create_doctype("html");
        doc.append_child(doc.root(), dt).unwrap();
        let c = doc.create_comment(" note ");
        doc.append_child(doc.root(), c).unwrap();
        assert_eq!(doc.outer_html(doc.root()), "<!DOCTYPE html><!-- note -->");
    }

    #[test]
    fn whole_document_serialization() {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        doc.append_child(doc.root(), html).unwrap();
        let body = doc.create_element("body");
        doc.append_child(html, body).unwrap();
        let p = doc.create_element("p");
        doc.append_child(body, p).unwrap();
        let t = doc.create_text("hi");
        doc.append_child(p, t).unwrap();
        assert_eq!(
            doc.outer_html(doc.root()),
            "<html><body><p>hi</p></body></html>"
        );
    }
}
