//! The UI event vocabulary.
//!
//! The paper identifies "UI event handlers" (`onload`, `onmouseover`, …) as
//! script-invoking principals, and event *delivery* to a DOM element as an implicit
//! `use` of that element. This module enumerates the events the browser's dispatcher
//! understands and maps them to their handler attributes.

use std::fmt;
use std::str::FromStr;

/// A UI event type the browser can deliver to a DOM element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventType {
    /// Mouse click.
    Click,
    /// Page or element finished loading.
    Load,
    /// Pointer entered the element.
    MouseOver,
    /// Pointer left the element.
    MouseOut,
    /// Form control value changed.
    Change,
    /// Form submission.
    Submit,
    /// Keyboard key pressed.
    KeyPress,
    /// Element lost focus.
    Blur,
    /// Element gained focus.
    Focus,
    /// Image or resource failed to load (a favourite XSS vector via `onerror`).
    Error,
}

impl EventType {
    /// All supported event types.
    pub const ALL: [EventType; 10] = [
        EventType::Click,
        EventType::Load,
        EventType::MouseOver,
        EventType::MouseOut,
        EventType::Change,
        EventType::Submit,
        EventType::KeyPress,
        EventType::Blur,
        EventType::Focus,
        EventType::Error,
    ];

    /// The event name (without the `on` prefix), e.g. `click`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EventType::Click => "click",
            EventType::Load => "load",
            EventType::MouseOver => "mouseover",
            EventType::MouseOut => "mouseout",
            EventType::Change => "change",
            EventType::Submit => "submit",
            EventType::KeyPress => "keypress",
            EventType::Blur => "blur",
            EventType::Focus => "focus",
            EventType::Error => "error",
        }
    }

    /// The inline handler attribute for this event, e.g. `onclick`.
    #[must_use]
    pub fn handler_attribute(self) -> String {
        format!("on{}", self.name())
    }

    /// Parses a handler attribute name (`onclick`) or event name (`click`).
    #[must_use]
    pub fn from_attribute(name: &str) -> Option<Self> {
        let name = name.to_ascii_lowercase();
        let name = name.strip_prefix("on").unwrap_or(&name);
        Self::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// `true` when `attribute` names any inline event handler (`on…`) we recognize.
    #[must_use]
    pub fn is_handler_attribute(attribute: &str) -> bool {
        attribute.len() > 2
            && attribute[..2].eq_ignore_ascii_case("on")
            && Self::from_attribute(attribute).is_some()
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EventType {
    type Err = UnknownEvent;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EventType::from_attribute(s).ok_or_else(|| UnknownEvent(s.to_string()))
    }
}

/// Error returned when parsing an unknown event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEvent(pub String);

impl fmt::Display for UnknownEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown event type `{}`", self.0)
    }
}

impl std::error::Error for UnknownEvent {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_names_roundtrip() {
        for event in EventType::ALL {
            let attr = event.handler_attribute();
            assert!(attr.starts_with("on"));
            assert_eq!(EventType::from_attribute(&attr), Some(event));
            assert_eq!(attr.parse::<EventType>().unwrap(), event);
            assert_eq!(event.name().parse::<EventType>().unwrap(), event);
        }
    }

    #[test]
    fn unknown_events_are_rejected() {
        assert_eq!(EventType::from_attribute("onteleport"), None);
        assert!("teleport".parse::<EventType>().is_err());
        assert!(!EventType::is_handler_attribute("href"));
        assert!(!EventType::is_handler_attribute("on"));
    }

    #[test]
    fn handler_attribute_detection() {
        assert!(EventType::is_handler_attribute("onclick"));
        assert!(EventType::is_handler_attribute("ONLOAD"));
        assert!(EventType::is_handler_attribute("onerror"));
        assert!(!EventType::is_handler_attribute("online-status"));
    }
}
