//! The arena document and its mutation/query API.

use std::error::Error;
use std::fmt;

use crate::iter::{Ancestors, Children, Descendants};
use crate::node::{ElementData, Node, NodeData, NodeId};

/// Errors produced by DOM mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomError {
    /// The operation would create a cycle (a node cannot become its own descendant).
    WouldCreateCycle,
    /// The given reference node is not a child of the given parent.
    NotAChild,
    /// The node cannot accept children (text, comment, doctype nodes).
    NotAContainer,
    /// The document root cannot be moved or removed.
    CannotMoveRoot,
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomError::WouldCreateCycle => "operation would create a cycle in the tree",
            DomError::NotAChild => "reference node is not a child of the given parent",
            DomError::NotAContainer => "node cannot contain children",
            DomError::CannotMoveRoot => "the document root cannot be moved or removed",
        };
        f.write_str(s)
    }
}

impl Error for DomError {}

/// An HTML document held in an arena.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

impl Document {
    /// Creates a document containing only the document root node.
    #[must_use]
    pub fn new() -> Self {
        let root = Node::new(NodeData::Document);
        Document {
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    /// The document root node.
    #[must_use]
    pub const fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes ever created (including detached ones).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Recovers a [`NodeId`] from a raw arena index, validating that the index refers
    /// to an existing node. Embedders (e.g. the browser's script host) use this to
    /// round-trip node handles through foreign code without exposing arena internals.
    #[must_use]
    pub fn node_id_at(&self, index: usize) -> Option<NodeId> {
        if index < self.nodes.len() {
            Some(NodeId(index))
        } else {
            None
        }
    }

    // ---------------------------------------------------------------- creation

    /// Creates a detached element node.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        self.push(Node::new(NodeData::Element(ElementData::new(tag))))
    }

    /// Creates a detached element node with attributes.
    pub fn create_element_with_attrs(&mut self, tag: &str, attrs: &[(&str, &str)]) -> NodeId {
        let mut data = ElementData::new(tag);
        for (name, value) in attrs {
            data.set_attr(name, value);
        }
        self.push(Node::new(NodeData::Element(data)))
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.push(Node::new(NodeData::Text(text.to_string())))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.push(Node::new(NodeData::Comment(text.to_string())))
    }

    /// Creates a doctype node.
    pub fn create_doctype(&mut self, name: &str) -> NodeId {
        self.push(Node::new(NodeData::Doctype(name.to_string())))
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    // ---------------------------------------------------------------- accessors

    /// The payload of a node.
    #[must_use]
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0].data
    }

    /// The element payload, when `id` is an element.
    #[must_use]
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        self.data(id).as_element()
    }

    /// The lower-cased tag name, when `id` is an element.
    #[must_use]
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        self.element(id).map(|e| e.tag.as_str())
    }

    /// `true` when `id` is an element with the given tag.
    #[must_use]
    pub fn is_element_named(&self, id: NodeId, tag: &str) -> bool {
        self.data(id).is_element_named(tag)
    }

    /// An attribute value of an element node.
    #[must_use]
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).and_then(|e| e.attr(name))
    }

    /// All attributes of an element node (empty for non-elements).
    #[must_use]
    pub fn attributes(&self, id: NodeId) -> &[(String, String)] {
        match self.element(id) {
            Some(e) => &e.attrs,
            None => &[],
        }
    }

    /// Sets an attribute on an element node. Ignored for non-element nodes.
    pub fn set_attribute(&mut self, id: NodeId, name: &str, value: &str) {
        if let NodeData::Element(e) = &mut self.nodes[id.0].data {
            e.set_attr(name, value);
        }
    }

    /// Removes an attribute. Returns `true` when the attribute existed.
    pub fn remove_attribute(&mut self, id: NodeId, name: &str) -> bool {
        if let NodeData::Element(e) = &mut self.nodes[id.0].data {
            e.remove_attr(name)
        } else {
            false
        }
    }

    /// Replaces the text of a text node. Ignored for other node kinds.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        if let NodeData::Text(t) = &mut self.nodes[id.0].data {
            *t = text.to_string();
        }
    }

    // ---------------------------------------------------------------- structure

    /// The parent of a node, if attached.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The first child of a node.
    #[must_use]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].first_child
    }

    /// The last child of a node.
    #[must_use]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].last_child
    }

    /// The next sibling of a node.
    #[must_use]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].next_sibling
    }

    /// The previous sibling of a node.
    #[must_use]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].prev_sibling
    }

    /// Iterator over the direct children of a node.
    #[must_use]
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children::new(self, id)
    }

    /// Iterator over all descendants of a node in document (pre-)order, excluding the
    /// node itself.
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// Iterator over the ancestors of a node, nearest first, excluding the node.
    #[must_use]
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// `true` when `ancestor` is an ancestor of `node` (or the node itself).
    #[must_use]
    pub fn is_inclusive_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        node == ancestor || self.ancestors(node).any(|a| a == ancestor)
    }

    /// `true` when the node is attached to the document tree (reachable from the root).
    #[must_use]
    pub fn is_attached(&self, id: NodeId) -> bool {
        self.is_inclusive_ancestor(self.root, id)
    }

    // ---------------------------------------------------------------- mutation

    /// Appends `child` as the last child of `parent`, detaching it from any previous
    /// position.
    ///
    /// # Errors
    ///
    /// * [`DomError::NotAContainer`] when `parent` is a text/comment/doctype node,
    /// * [`DomError::WouldCreateCycle`] when `child` is an ancestor of `parent`,
    /// * [`DomError::CannotMoveRoot`] when `child` is the document root.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), DomError> {
        self.check_insertable(parent, child)?;
        self.detach(child);
        let last = self.nodes[parent.0].last_child;
        self.nodes[child.0].parent = Some(parent);
        self.nodes[child.0].prev_sibling = last;
        self.nodes[child.0].next_sibling = None;
        match last {
            Some(last) => self.nodes[last.0].next_sibling = Some(child),
            None => self.nodes[parent.0].first_child = Some(child),
        }
        self.nodes[parent.0].last_child = Some(child);
        Ok(())
    }

    /// Inserts `child` into `parent` immediately before `reference`.
    ///
    /// # Errors
    ///
    /// As for [`Document::append_child`], plus [`DomError::NotAChild`] when `reference`
    /// is not a child of `parent`.
    pub fn insert_before(
        &mut self,
        parent: NodeId,
        child: NodeId,
        reference: NodeId,
    ) -> Result<(), DomError> {
        self.check_insertable(parent, child)?;
        if self.nodes[reference.0].parent != Some(parent) {
            return Err(DomError::NotAChild);
        }
        self.detach(child);
        let prev = self.nodes[reference.0].prev_sibling;
        self.nodes[child.0].parent = Some(parent);
        self.nodes[child.0].prev_sibling = prev;
        self.nodes[child.0].next_sibling = Some(reference);
        self.nodes[reference.0].prev_sibling = Some(child);
        match prev {
            Some(prev) => self.nodes[prev.0].next_sibling = Some(child),
            None => self.nodes[parent.0].first_child = Some(child),
        }
        Ok(())
    }

    /// Detaches a node (and its subtree) from the tree. The node remains valid and can
    /// be re-inserted. Detaching the root is an error.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::CannotMoveRoot`] when `id` is the document root.
    pub fn remove(&mut self, id: NodeId) -> Result<(), DomError> {
        if id == self.root {
            return Err(DomError::CannotMoveRoot);
        }
        self.detach(id);
        Ok(())
    }

    /// Removes every child of `parent` (used for `innerHTML` assignment).
    pub fn remove_children(&mut self, parent: NodeId) {
        while let Some(child) = self.nodes[parent.0].first_child {
            self.detach(child);
        }
    }

    fn check_insertable(&self, parent: NodeId, child: NodeId) -> Result<(), DomError> {
        if child == self.root {
            return Err(DomError::CannotMoveRoot);
        }
        match self.data(parent) {
            NodeData::Document | NodeData::Element(_) => {}
            _ => return Err(DomError::NotAContainer),
        }
        if self.is_inclusive_ancestor(child, parent) {
            return Err(DomError::WouldCreateCycle);
        }
        Ok(())
    }

    fn detach(&mut self, id: NodeId) {
        let (parent, prev, next) = {
            let node = &self.nodes[id.0];
            (node.parent, node.prev_sibling, node.next_sibling)
        };
        if let Some(prev) = prev {
            self.nodes[prev.0].next_sibling = next;
        } else if let Some(parent) = parent {
            self.nodes[parent.0].first_child = next;
        }
        if let Some(next) = next {
            self.nodes[next.0].prev_sibling = prev;
        } else if let Some(parent) = parent {
            self.nodes[parent.0].last_child = prev;
        }
        let node = &mut self.nodes[id.0];
        node.parent = None;
        node.prev_sibling = None;
        node.next_sibling = None;
    }

    // ---------------------------------------------------------------- queries

    /// The first attached element whose `id` attribute equals `value`.
    #[must_use]
    pub fn get_element_by_id(&self, value: &str) -> Option<NodeId> {
        self.descendants(self.root)
            .find(|&id| self.attribute(id, "id") == Some(value))
    }

    /// All attached elements with the given tag, in document order.
    #[must_use]
    pub fn elements_by_tag_name(&self, tag: &str) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&id| self.is_element_named(id, tag))
            .collect()
    }

    /// All attached elements carrying an attribute with the given name, in document
    /// order.
    #[must_use]
    pub fn elements_with_attribute(&self, name: &str) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&id| self.attribute(id, name).is_some())
            .collect()
    }

    /// All attached elements, in document order.
    #[must_use]
    pub fn all_elements(&self) -> Vec<NodeId> {
        self.descendants(self.root)
            .filter(|&id| self.element(id).is_some())
            .collect()
    }

    /// The concatenated text of all text-node descendants of `id` (plus the node's own
    /// text when it is a text node).
    #[must_use]
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        if let Some(text) = self.data(id).as_text() {
            out.push_str(text);
        }
        for descendant in self.descendants(id) {
            if let Some(text) = self.data(descendant).as_text() {
                out.push_str(text);
            }
        }
        out
    }

    /// The nearest ancestor (or the node itself) that is an element with the given tag.
    #[must_use]
    pub fn closest(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        if self.is_element_named(id, tag) {
            return Some(id);
        }
        self.ancestors(id).find(|&a| self.is_element_named(a, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("html");
        doc.append_child(doc.root(), html).unwrap();
        let body = doc.create_element("body");
        doc.append_child(html, body).unwrap();
        let div = doc.create_element_with_attrs("div", &[("id", "main"), ("class", "post")]);
        doc.append_child(body, div).unwrap();
        (doc, html, body, div)
    }

    #[test]
    fn build_and_query() {
        let (mut doc, _html, body, div) = sample();
        let text = doc.create_text("hello world");
        doc.append_child(div, text).unwrap();

        assert_eq!(doc.get_element_by_id("main"), Some(div));
        assert_eq!(doc.get_element_by_id("nope"), None);
        assert_eq!(doc.elements_by_tag_name("div"), vec![div]);
        assert_eq!(doc.text_content(body), "hello world");
        assert_eq!(doc.tag_name(div), Some("div"));
        assert_eq!(doc.attribute(div, "class"), Some("post"));
        assert!(doc.is_attached(div));
    }

    #[test]
    fn sibling_order_is_preserved() {
        let (mut doc, _html, body, div) = sample();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        doc.append_child(body, a).unwrap();
        doc.append_child(body, c).unwrap();
        doc.insert_before(body, b, c).unwrap();

        let order: Vec<Option<&str>> = doc.children(body).map(|id| doc.tag_name(id)).collect();
        assert_eq!(order, vec![Some("div"), Some("a"), Some("b"), Some("c")]);
        assert_eq!(doc.first_child(body), Some(div));
        assert_eq!(doc.last_child(body), Some(c));
        assert_eq!(doc.prev_sibling(b), Some(a));
        assert_eq!(doc.next_sibling(b), Some(c));
    }

    #[test]
    fn remove_detaches_but_keeps_the_subtree_usable() {
        let (mut doc, _html, body, div) = sample();
        let text = doc.create_text("x");
        doc.append_child(div, text).unwrap();
        doc.remove(div).unwrap();
        assert!(!doc.is_attached(div));
        assert_eq!(doc.get_element_by_id("main"), None);
        // Subtree is still intact and can be re-attached.
        assert_eq!(doc.text_content(div), "x");
        doc.append_child(body, div).unwrap();
        assert_eq!(doc.get_element_by_id("main"), Some(div));
    }

    #[test]
    fn remove_children_clears_a_container() {
        let (mut doc, _html, _body, div) = sample();
        for _ in 0..3 {
            let t = doc.create_text("x");
            doc.append_child(div, t).unwrap();
        }
        assert_eq!(doc.children(div).count(), 3);
        doc.remove_children(div);
        assert_eq!(doc.children(div).count(), 0);
        assert_eq!(doc.text_content(div), "");
    }

    #[test]
    fn cycles_and_bad_containers_are_rejected() {
        let (mut doc, html, body, div) = sample();
        assert_eq!(doc.append_child(div, html), Err(DomError::WouldCreateCycle));
        assert_eq!(doc.append_child(div, div), Err(DomError::WouldCreateCycle));
        let text = doc.create_text("t");
        doc.append_child(div, text).unwrap();
        let other = doc.create_element("p");
        assert_eq!(doc.append_child(text, other), Err(DomError::NotAContainer));
        assert_eq!(doc.remove(doc.root()), Err(DomError::CannotMoveRoot));
        let stray = doc.create_element("span");
        assert_eq!(
            doc.insert_before(body, other, stray),
            Err(DomError::NotAChild)
        );
    }

    #[test]
    fn attribute_mutation() {
        let (mut doc, _html, _body, div) = sample();
        doc.set_attribute(div, "ring", "2");
        assert_eq!(doc.attribute(div, "ring"), Some("2"));
        doc.set_attribute(div, "RING", "3");
        assert_eq!(doc.attribute(div, "ring"), Some("3"));
        assert!(doc.remove_attribute(div, "ring"));
        assert_eq!(doc.attribute(div, "ring"), None);
        assert_eq!(doc.attributes(div).len(), 2);

        // Setting attributes on a text node is a no-op, not a panic.
        let text = doc.create_text("x");
        doc.set_attribute(text, "id", "t");
        assert_eq!(doc.attribute(text, "id"), None);
        assert!(doc.attributes(text).is_empty());
    }

    #[test]
    fn ancestors_and_closest() {
        let (doc, html, body, div) = sample();
        let chain: Vec<NodeId> = doc.ancestors(div).collect();
        assert_eq!(chain, vec![body, html, doc.root()]);
        assert_eq!(doc.closest(div, "body"), Some(body));
        assert_eq!(doc.closest(div, "div"), Some(div));
        assert_eq!(doc.closest(div, "table"), None);
        assert!(doc.is_inclusive_ancestor(html, div));
        assert!(!doc.is_inclusive_ancestor(div, html));
    }

    #[test]
    fn descendants_are_in_document_order() {
        let (mut doc, _html, body, div) = sample();
        let p = doc.create_element("p");
        doc.append_child(div, p).unwrap();
        let t = doc.create_text("x");
        doc.append_child(p, t).unwrap();
        let span = doc.create_element("span");
        doc.append_child(body, span).unwrap();

        let order: Vec<NodeId> = doc.descendants(body).collect();
        assert_eq!(order, vec![div, p, t, span]);
    }

    #[test]
    fn set_text_only_affects_text_nodes() {
        let (mut doc, _html, _body, div) = sample();
        let t = doc.create_text("before");
        doc.append_child(div, t).unwrap();
        doc.set_text(t, "after");
        assert_eq!(doc.text_content(div), "after");
        doc.set_text(div, "ignored");
        assert_eq!(doc.text_content(div), "after");
    }
}
