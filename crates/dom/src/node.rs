//! Node identifiers and node payloads.

use std::fmt;

/// A stable handle to a node inside a [`Document`](crate::Document).
///
/// Ids are indices into the document's arena; slots are never reused, so an id remains
/// valid (though possibly *detached* from the tree) for the document's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw arena index (useful for keying side tables).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of an element node: its tag name and attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementData {
    /// Lower-cased tag name (`div`, `script`, …).
    pub tag: String,
    /// Attributes in document order. Names are lower-cased; duplicate names keep the
    /// first occurrence (matching HTML parsing rules).
    pub attrs: Vec<(String, String)>,
}

impl ElementData {
    /// Creates an element payload with no attributes.
    #[must_use]
    pub fn new(tag: &str) -> Self {
        ElementData {
            tag: tag.to_ascii_lowercase(),
            attrs: Vec::new(),
        }
    }

    /// Looks up an attribute value by (case-insensitive) name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Sets an attribute, replacing an existing one with the same name.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let name_lower = name.to_ascii_lowercase();
        if let Some(entry) = self.attrs.iter_mut().find(|(n, _)| *n == name_lower) {
            entry.1 = value.to_string();
        } else {
            self.attrs.push((name_lower, value.to_string()));
        }
    }

    /// Removes an attribute. Returns `true` if it was present.
    pub fn remove_attr(&mut self, name: &str) -> bool {
        let before = self.attrs.len();
        self.attrs.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before != self.attrs.len()
    }
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The document root (exactly one per document).
    Document,
    /// A `<!DOCTYPE …>` declaration.
    Doctype(String),
    /// An element with a tag name and attributes.
    Element(ElementData),
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
}

impl NodeData {
    /// The element payload, when this node is an element.
    #[must_use]
    pub fn as_element(&self) -> Option<&ElementData> {
        match self {
            NodeData::Element(e) => Some(e),
            _ => None,
        }
    }

    /// `true` when this node is an element with the given (case-insensitive) tag.
    #[must_use]
    pub fn is_element_named(&self, tag: &str) -> bool {
        matches!(self, NodeData::Element(e) if e.tag.eq_ignore_ascii_case(tag))
    }

    /// The text, when this is a text node.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            NodeData::Text(t) => Some(t.as_str()),
            _ => None,
        }
    }
}

/// A node in the arena: tree links plus payload. Internal to the crate; navigate
/// through [`Document`](crate::Document) methods.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) data: NodeData,
}

impl Node {
    pub(crate) fn new(data: NodeData) -> Self {
        Node {
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_attributes_are_case_insensitive_and_first_wins_on_lookup() {
        let mut e = ElementData::new("DIV");
        assert_eq!(e.tag, "div");
        e.set_attr("Ring", "2");
        assert_eq!(e.attr("ring"), Some("2"));
        assert_eq!(e.attr("RING"), Some("2"));
        e.set_attr("ring", "3");
        assert_eq!(e.attr("ring"), Some("3"));
        assert_eq!(e.attrs.len(), 1);
        assert!(e.remove_attr("RING"));
        assert!(!e.remove_attr("ring"));
    }

    #[test]
    fn node_data_helpers() {
        let el = NodeData::Element(ElementData::new("script"));
        assert!(el.is_element_named("SCRIPT"));
        assert!(!el.is_element_named("div"));
        assert!(el.as_element().is_some());
        assert!(el.as_text().is_none());

        let text = NodeData::Text("hi".into());
        assert_eq!(text.as_text(), Some("hi"));
        assert!(text.as_element().is_none());
        assert!(!text.is_element_named("p"));
    }

    #[test]
    fn node_id_exposes_its_index() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId(7).to_string(), "#7");
    }
}
