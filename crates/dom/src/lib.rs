//! # escudo-dom
//!
//! The document object model used by the ESCUDO browser reproduction.
//!
//! The DOM is an arena: every node lives in a [`Document`]-owned vector and is referred
//! to by a copyable [`NodeId`]. Node slots are **never reused**, which keeps ids stable
//! for the lifetime of the page — important because the browser keeps its ESCUDO
//! security contexts in a side table keyed by `NodeId` (the paper requires that the
//! configuration "is not exposed to JavaScript programs", so labels are deliberately
//! not stored on the nodes themselves).
//!
//! The crate provides:
//!
//! * [`Document`] — creation, mutation (append/insert/remove/attributes), queries
//!   (`get_element_by_id`, by tag, by attribute), traversal iterators, text content,
//! * [`serialize`] — HTML serialization (`outer_html` / `inner_html`),
//! * [`events`] — the UI event vocabulary (`onclick`, `onload`, …) the browser's event
//!   dispatcher understands.
//!
//! # Example
//!
//! ```
//! use escudo_dom::{Document, NodeData};
//!
//! let mut doc = Document::new();
//! let html = doc.create_element("html");
//! doc.append_child(doc.root(), html).unwrap();
//! let body = doc.create_element("body");
//! doc.append_child(html, body).unwrap();
//! let p = doc.create_element("p");
//! doc.set_attribute(p, "id", "greeting");
//! doc.append_child(body, p).unwrap();
//! let text = doc.create_text("hello");
//! doc.append_child(p, text).unwrap();
//!
//! assert_eq!(doc.get_element_by_id("greeting"), Some(p));
//! assert_eq!(doc.text_content(body), "hello");
//! assert_eq!(doc.outer_html(p), "<p id=\"greeting\">hello</p>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod document;
pub mod events;
pub mod iter;
pub mod node;
pub mod serialize;

pub use document::{Document, DomError};
pub use events::EventType;
pub use node::{ElementData, NodeData, NodeId};
