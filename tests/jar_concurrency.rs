//! Concurrency equivalence for the shared cookie jar: N threads storing into and
//! reading from one [`SharedCookieJar`] — over disjoint *and* overlapping hosts —
//! must produce `Cookie` headers byte-identical to a single-threaded [`CookieJar`]
//! oracle replaying the same operations.

use std::thread;

use escudo::net::{CookieJar, SetCookie, SharedCookieJar, Url};

const THREADS: usize = 8;
const ROUNDS: usize = 10;

fn url(s: &str) -> Url {
    Url::parse(s).unwrap()
}

/// The deterministic per-session script: stores under several path scopes
/// (default-path, host-wide, explicit deep path, replacement every round)
/// interleaved with header builds that exercise §5.4 ordering.
fn session_ops(host: &str, rounds: usize) -> Vec<(bool, Url, Option<SetCookie>)> {
    // (is_store, url, directive) triples; directive is `None` for header builds.
    let u = |suffix: &str| url(&format!("http://{host}{suffix}"));
    let mut ops = Vec::new();
    for round in 0..rounds {
        ops.push((
            true,
            u("/forum/login.php"),
            Some(SetCookie::new("sid", format!("s{round}"))),
        ));
        ops.push((
            true,
            u("/forum/login.php"),
            Some(SetCookie::new("data", format!("d{round}")).with_path("/")),
        ));
        ops.push((
            true,
            u("/forum/admin/tool.php"),
            Some(SetCookie::new("admin", format!("a{round}"))),
        ));
        ops.push((false, u("/forum/viewtopic.php?t=1"), None));
        ops.push((false, u("/forum/admin/index.php"), None));
        ops.push((false, u("/blog/index.php"), None));
        ops.push((false, u("/"), None));
    }
    ops
}

fn run_ops_shared(jar: &SharedCookieJar, host: &str, rounds: usize) -> Vec<Option<String>> {
    let mut headers = Vec::new();
    for (is_store, url, directive) in session_ops(host, rounds) {
        if is_store {
            jar.store(&url, &directive.unwrap());
        } else {
            headers.push(jar.cookie_header_for(&url, |_| true));
        }
    }
    headers
}

fn run_ops_oracle(host: &str, rounds: usize) -> Vec<Option<String>> {
    let mut jar = CookieJar::new();
    let mut headers = Vec::new();
    for (is_store, url, directive) in session_ops(host, rounds) {
        if is_store {
            jar.store(&url, &directive.unwrap());
        } else {
            headers.push(jar.cookie_header_for(&url, |_| true));
        }
    }
    headers
}

#[test]
fn disjoint_host_sessions_match_the_single_threaded_oracle() {
    let jar = SharedCookieJar::new();
    let observed: Vec<(String, Vec<Option<String>>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let jar = &jar;
                scope.spawn(move || {
                    let host = format!("session{t}.example");
                    let headers = run_ops_shared(jar, &host, ROUNDS);
                    (host, headers)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("session thread panicked"))
            .collect()
    });

    for (host, headers) in &observed {
        let expected = run_ops_oracle(host, ROUNDS);
        assert_eq!(
            headers, &expected,
            "shared-jar headers for {host} diverged from the single-threaded oracle"
        );
        // Sanity on the script itself: the default-path cookie never reaches /blog.
        for chunk in headers.chunks(4) {
            let blog = chunk[2].as_deref().unwrap_or("");
            assert!(
                !blog.contains("sid="),
                "default-path leak into /blog: {blog}"
            );
            assert!(
                !blog.contains("admin="),
                "deep-path leak into /blog: {blog}"
            );
        }
    }
    // 3 stores per round per session, `sid`/`data`/`admin` replaced every round.
    assert_eq!(jar.len(), THREADS * 3);
    let stats = jar.stats();
    assert_eq!(stats.stored, (THREADS * 3) as u64);
    assert_eq!(stats.replaced, (THREADS * 3 * (ROUNDS - 1)) as u64);
}

#[test]
fn overlapping_host_stores_converge_to_the_oracle_state() {
    // Every thread stores thread-unique cookie names under the SAME two hosts, each
    // cookie with a distinct path depth — so the final §5.4 attach order (longest
    // path first) is deterministic regardless of store interleaving, and the final
    // headers must equal a single-threaded replay in any store order.
    let jar = SharedCookieJar::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let jar = &jar;
            scope.spawn(move || {
                for host in ["shared.example", "other.example"] {
                    // Unique path depth per thread: /d, /d/d, /d/d/d, …
                    let dir = "/d".repeat(t + 1);
                    jar.store(
                        &url(&format!("http://{host}{dir}/login.php")),
                        &SetCookie::new(format!("c{t}"), format!("v{t}")),
                    );
                }
            });
        }
    });

    let mut oracle = CookieJar::new();
    for t in 0..THREADS {
        for host in ["shared.example", "other.example"] {
            let dir = "/d".repeat(t + 1);
            oracle.store(
                &url(&format!("http://{host}{dir}/login.php")),
                &SetCookie::new(format!("c{t}"), format!("v{t}")),
            );
        }
    }

    for host in ["shared.example", "other.example"] {
        // A request deep enough to match every path scope sees all cookies,
        // longest path first.
        let deep = url(&format!("http://{host}{}/page.php", "/d".repeat(THREADS)));
        let observed = jar.cookie_header_for(&deep, |_| true);
        let expected = oracle.cookie_header_for(&deep, |_| true);
        assert_eq!(observed, expected, "deep request to {host}");
        assert_eq!(
            observed.as_deref(),
            Some("c7=v7; c6=v6; c5=v5; c4=v4; c3=v3; c2=v2; c1=v1; c0=v0"),
            "§5.4 order must be longest path first for {host}"
        );
        // A shallow request sees only the shallow scopes.
        let shallow = url(&format!("http://{host}/d/x.php"));
        assert_eq!(
            jar.cookie_header_for(&shallow, |_| true),
            oracle.cookie_header_for(&shallow, |_| true),
            "shallow request to {host}"
        );
    }
    assert_eq!(jar.len(), THREADS * 2);
}

#[test]
fn concurrent_readers_see_consistent_headers_during_writes() {
    // Readers racing a writer on the same host must only ever observe prefixes of
    // the writer's deterministic store sequence: cookie `w{i}` (all under one path
    // scope) appears only after `w{i-1}`, because creation order ties §5.4 order.
    let jar = SharedCookieJar::new();
    let writes = 50;
    thread::scope(|scope| {
        let jar_ref = &jar;
        scope.spawn(move || {
            for i in 0..writes {
                jar_ref.store(
                    &url("http://race.example/app/page.php"),
                    &SetCookie::new(format!("w{i}"), "1"),
                );
            }
        });
        for _ in 0..3 {
            scope.spawn(move || {
                for _ in 0..200 {
                    let header = jar_ref
                        .cookie_header_for(&url("http://race.example/app/x"), |_| true)
                        .unwrap_or_default();
                    let names: Vec<&str> = header
                        .split("; ")
                        .filter(|s| !s.is_empty())
                        .map(|pair| pair.split('=').next().unwrap())
                        .collect();
                    for (i, name) in names.iter().enumerate() {
                        assert_eq!(
                            *name,
                            format!("w{i}"),
                            "snapshot must be a creation-order prefix, got {names:?}"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(jar.len(), writes);
}
