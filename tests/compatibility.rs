//! Integration test for §6.3 (compatibility with legacy applications) and for the
//! functional side of the case studies: the ESCUDO configuration must not break the
//! applications' own behaviour.

use escudo::apps::{CalendarApp, CalendarConfig, ForumApp, ForumConfig};
use escudo::browser::{Browser, PolicyMode};

/// ESCUDO-configured application + non-ESCUDO browser: the configuration is ignored
/// and the application still works.
#[test]
fn escudo_application_works_on_a_legacy_browser() {
    let mut browser = Browser::new(PolicyMode::SameOriginOnly);
    browser.network_mut().register(
        "http://forum.example",
        ForumApp::new(ForumConfig::default()),
    );
    browser
        .navigate("http://forum.example/login.php?user=alice")
        .unwrap();
    let page = browser.navigate("http://forum.example/index.php").unwrap();

    assert!(browser.page(page).all_scripts_succeeded());
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("ready")
    );
    assert_eq!(browser.erm().denials(), 0);
}

/// Legacy application + ESCUDO browser: everything collapses into a single ring and
/// ESCUDO behaves exactly like the same-origin policy.
#[test]
fn legacy_application_works_on_the_escudo_browser() {
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://forum.example", ForumApp::new(ForumConfig::legacy()));
    browser
        .navigate("http://forum.example/login.php?user=alice")
        .unwrap();
    let page = browser.navigate("http://forum.example/index.php").unwrap();

    assert!(browser.page(page).legacy);
    assert!(browser.page(page).all_scripts_succeeded());
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("ready")
    );
    assert_eq!(browser.erm().denials(), 0);
}

/// The ESCUDO-configured applications keep all their legitimate functionality when the
/// full model is enforced: logging in, posting through forms, running their own
/// client-side code.
#[test]
fn escudo_enforcement_does_not_break_the_forum() {
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://forum.example", forum);

    browser
        .navigate("http://forum.example/login.php?user=alice")
        .unwrap();
    let page = browser.navigate("http://forum.example/index.php").unwrap();
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("ready")
    );

    // Post a topic through the real form.
    browser
        .submit_form(
            page,
            "new-topic",
            &[("subject", "Hello"), ("message", "First post")],
        )
        .unwrap();
    assert_eq!(state.lock().expect("app state lock").topics.len(), 1);
    assert_eq!(
        state.lock().expect("app state lock").topics[0].author,
        "alice"
    );

    // Reply through the topic page's form.
    let topic_page = browser
        .navigate("http://forum.example/viewtopic.php?t=1")
        .unwrap();
    browser
        .submit_form(topic_page, "reply-form", &[("message", "a reply")])
        .unwrap();
    assert_eq!(state.lock().expect("app state lock").replies.len(), 1);
}

#[test]
fn escudo_enforcement_does_not_break_the_calendar() {
    let calendar = CalendarApp::new(CalendarConfig::vulnerable());
    let state = calendar.state();
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);

    browser
        .navigate("http://calendar.example/login.php?user=bob")
        .unwrap();
    let page = browser
        .navigate("http://calendar.example/index.php")
        .unwrap();
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("calendar ready")
    );
    browser
        .submit_form(page, "add-event", &[("title", "Standup"), ("day", "3")])
        .unwrap();
    assert_eq!(state.lock().expect("app state lock").events.len(), 1);
    assert_eq!(
        state.lock().expect("app state lock").events[0].author,
        "bob"
    );
}

/// Escudo-configured pages carry their configuration in ways a legacy browser ignores:
/// div/body attributes and optional headers only.
#[test]
fn the_configuration_channel_is_invisible_to_legacy_browsers() {
    let mut app = ForumApp::new(ForumConfig::default());
    use escudo::net::{Request, Server};
    let response = app.handle(&Request::get("http://forum.example/index.php").unwrap());
    // The configuration is carried in attributes and optional headers…
    assert!(response.body.contains("ring="));
    assert!(!response.cookie_policies().is_empty() || !response.api_policies().is_empty());
    // …but the markup is otherwise ordinary HTML (no new tags), so a legacy browser
    // parsing it sees a well-formed page.
    let parsed =
        escudo::html::parse_document(&response.body, &escudo::html::ParseOptions::legacy());
    assert!(!parsed.document.elements_by_tag_name("form").is_empty());
    assert_eq!(parsed.report.rejected_end_tags, 0);
}
