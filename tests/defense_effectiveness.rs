//! Integration test for defense effectiveness across the whole scenario fleet.
//!
//! The paper's §6.4 stages 4 XSS and 5 CSRF attacks against each of the two
//! case-study applications and reports that every attack is neutralized when
//! ESCUDO is enforced. The scenario registry generalizes that claim: every
//! registered scenario — the §6.4 classics plus the script-assembled SPA, the
//! multi-origin ad network and the per-element vault — declares the expected
//! verdict of each case under each policy mode, and this test runs the full
//! (app × attack × mode) matrix end to end through the real browser/server
//! pipeline and demands zero unexpected cells.

use escudo::apps::attacks::{all_csrf_attacks, all_xss_attacks, AttackKind};
use escudo::apps::evaluate::DefenseReport;
use escudo::apps::scenario::{registry, CaseKind, MatrixReport, Verdict, WorkloadTag};
use escudo::browser::PolicyMode;

#[test]
fn the_corpus_has_the_papers_shape() {
    assert_eq!(all_xss_attacks().len(), 8, "4 XSS attacks per application");
    assert_eq!(
        all_csrf_attacks().len(),
        10,
        "5 CSRF attacks per application"
    );
}

#[test]
fn the_registry_covers_every_workload_shape() {
    let scenarios = registry();
    let ids: Vec<&str> = scenarios.iter().map(|s| s.id).collect();
    assert_eq!(ids, ["forum", "calendar", "blog", "spa", "adnet", "vault"]);

    // Every workload shape the fleet claims to cover is actually present.
    for tag in [
        WorkloadTag::Classic,
        WorkloadTag::ScriptAssembled,
        WorkloadTag::MultiOrigin,
        WorkloadTag::PerElement,
    ] {
        assert!(
            scenarios.iter().any(|s| s.tags.contains(&tag)),
            "no scenario carries {tag:?}"
        );
    }

    // The classics carry the complete §6.4 corpus; every scenario has at
    // least one attack case and the fleet keeps compatibility probes too.
    let case_count: usize = scenarios.iter().map(|s| s.cases.len()).sum();
    assert_eq!(case_count, 32);
    for scenario in &scenarios {
        assert!(
            scenario
                .cases
                .iter()
                .any(|c| !matches!(c.kind, CaseKind::Probe)),
            "{} has no attack case",
            scenario.id
        );
    }
    assert!(scenarios
        .iter()
        .flat_map(|s| s.cases.iter())
        .any(|c| matches!(c.kind, CaseKind::Probe)));
}

#[test]
fn the_full_matrix_has_zero_unexpected_cells() {
    let report = MatrixReport::run_registry();

    // 32 cases × 2 modes.
    assert_eq!(report.cells(), 64);
    assert!(
        report.unexpected().is_empty(),
        "cells deviating from their declared verdict: {:#?}",
        report.unexpected()
    );

    // ESCUDO neutralizes exactly the attack cells; the probes keep working.
    let probes = report
        .for_mode(PolicyMode::Escudo)
        .iter()
        .filter(|o| o.kind == CaseKind::Probe)
        .count();
    assert_eq!(report.successes(PolicyMode::Escudo), probes);
    assert_eq!(report.neutralized(PolicyMode::SameOriginOnly), 0);

    // Mediation is visible: the ESCUDO half of the matrix performs checks and
    // records denials; the baseline denies nothing that ESCUDO neutralizes.
    assert!(report.total_checks(PolicyMode::Escudo) > 0);
    assert!(report.total_denials(PolicyMode::Escudo) > 0);
}

#[test]
fn every_attack_succeeds_under_sop_and_is_neutralized_under_escudo() {
    let report = DefenseReport::run_full();

    // 18 attacks × 2 modes.
    assert_eq!(report.results.len(), 36);

    // Baseline: with only the same-origin policy, every staged attack achieves its
    // goal (that is why they are attacks).
    assert_eq!(
        report.successes(PolicyMode::SameOriginOnly),
        18,
        "all attacks should succeed under the SOP baseline: {:#?}",
        report
            .for_mode(PolicyMode::SameOriginOnly)
            .iter()
            .filter(|r| !r.succeeded)
            .collect::<Vec<_>>()
    );

    // "All the attacks were neutralized in the presence of ESCUDO."
    assert_eq!(
        report.neutralized(PolicyMode::Escudo),
        18,
        "all attacks should be neutralized under ESCUDO: {:#?}",
        report
            .for_mode(PolicyMode::Escudo)
            .iter()
            .filter(|r| r.succeeded)
            .collect::<Vec<_>>()
    );
}

#[test]
fn escudo_neutralizations_are_attributable_to_the_reference_monitor() {
    let report = DefenseReport::run_full();
    for result in report.for_mode(PolicyMode::Escudo) {
        match result.kind {
            // Every XSS attack is stopped by an explicit denial (the script aborts).
            AttackKind::Xss => assert!(
                result.denials > 0,
                "{} was neutralized but no denial was recorded",
                result.id
            ),
            // CSRF attacks are stopped by the cookie-use check, which also shows up as
            // denials in the monitor.
            AttackKind::Csrf => assert!(
                result.denials > 0,
                "{} was neutralized but no denial was recorded",
                result.id
            ),
        }
    }
}

#[test]
fn the_new_scenarios_neutralize_leaks_with_denials() {
    let report = MatrixReport::run_registry();
    for outcome in report.for_mode(PolicyMode::Escudo) {
        if outcome.kind == CaseKind::Leak {
            assert_eq!(
                outcome.observed,
                Verdict::Neutralized,
                "{} leaked under ESCUDO",
                outcome.case
            );
            assert!(
                outcome.denials > 0,
                "{} was neutralized but no denial was recorded",
                outcome.case
            );
        }
    }
}
