//! Integration test for §6.4 (defense effectiveness).
//!
//! The paper stages 4 XSS and 5 CSRF attacks against each of the two case-study
//! applications with their conventional defenses removed, and reports that every
//! attack is neutralized when ESCUDO is enforced. This test runs the full corpus under
//! both policy modes, end to end, through the real browser/server pipeline.

use escudo::apps::attacks::{all_csrf_attacks, all_xss_attacks, AttackKind};
use escudo::apps::evaluate::DefenseReport;
use escudo::browser::PolicyMode;

#[test]
fn the_corpus_has_the_papers_shape() {
    assert_eq!(all_xss_attacks().len(), 8, "4 XSS attacks per application");
    assert_eq!(
        all_csrf_attacks().len(),
        10,
        "5 CSRF attacks per application"
    );
}

#[test]
fn every_attack_succeeds_under_sop_and_is_neutralized_under_escudo() {
    let report = DefenseReport::run_full();

    // 18 attacks × 2 modes.
    assert_eq!(report.results.len(), 36);

    // Baseline: with only the same-origin policy, every staged attack achieves its
    // goal (that is why they are attacks).
    assert_eq!(
        report.successes(PolicyMode::SameOriginOnly),
        18,
        "all attacks should succeed under the SOP baseline: {:#?}",
        report
            .for_mode(PolicyMode::SameOriginOnly)
            .iter()
            .filter(|r| !r.succeeded)
            .collect::<Vec<_>>()
    );

    // "All the attacks were neutralized in the presence of ESCUDO."
    assert_eq!(
        report.neutralized(PolicyMode::Escudo),
        18,
        "all attacks should be neutralized under ESCUDO: {:#?}",
        report
            .for_mode(PolicyMode::Escudo)
            .iter()
            .filter(|r| r.succeeded)
            .collect::<Vec<_>>()
    );
}

#[test]
fn escudo_neutralizations_are_attributable_to_the_reference_monitor() {
    let report = DefenseReport::run_full();
    for result in report.for_mode(PolicyMode::Escudo) {
        match result.kind {
            // Every XSS attack is stopped by an explicit denial (the script aborts).
            AttackKind::Xss => assert!(
                result.denials > 0,
                "{} was neutralized but no denial was recorded",
                result.id
            ),
            // CSRF attacks are stopped by the cookie-use check, which also shows up as
            // denials in the monitor.
            AttackKind::Csrf => assert!(
                result.denials > 0,
                "{} was neutralized but no denial was recorded",
                result.id
            ),
        }
    }
}
