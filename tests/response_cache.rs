//! End-to-end guarantees of the mediation-keyed shared response cache:
//!
//! * cache on vs off is **oracle-equivalent**: byte-identical sequence-sorted
//!   request logs, per-subresource attached cookie names and verdict-relevant
//!   page state — a hit skips transport, never a mediation step,
//! * the cache key includes the exact mediated `Cookie` header, so two
//!   sessions with different cookies **never** share an entry: the foreign
//!   entry is discarded fail-closed and refetched,
//! * `Cache-Control: no-store` is honored and a response without an explicit
//!   `max-age` is never persisted,
//! * `max-age` expiry is **exactly countable** under a hand-advanced
//!   [`ManualClock`], and
//! * duplicate URLs within one subresource plan **single-flight**: one
//!   dispatch serves every duplicate slot, each still logged under its own
//!   sequence number,
//! * responses that carry `Set-Cookie` are **never** admitted into the shared
//!   cache — per-recipient session state cannot leak across sessions whose
//!   mediated `Cookie` headers happen to match,
//! * each opt-in consumes only its own layer: a prefetch-only session never
//!   drains another session's persistent entry and a cache-only session never
//!   drains a one-shot speculative entry, and
//! * a coalesced duplicate whose primary dispatch failed falls back under the
//!   session's own `FetchPolicy`, spending the same retry budget a
//!   non-coalesced slot would.
//!
//! The worlds are built by `escudo_bench::cache` — the same builders the
//! `cache_concurrent` CI gates drive — so the benches and these tests cannot
//! silently diverge in what they validate.
//!
//! [`ManualClock`]: escudo::core::ManualClock

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use escudo::browser::Browser;
use escudo::core::config::CookiePolicy;
use escudo::core::{engine_for_mode, Acl, PolicyMode, Ring};
use escudo::net::{
    FaultPlan, FetchPolicy, Request, Response, SetCookie, SharedCookieJar, SharedNetwork,
};
use escudo_bench::cache::{
    register_cache_world, run_cache_single_flight, run_cache_ttl_walk, CACHE_WORLD_SUBRESOURCES,
};

fn cache_browser(fabric: &Arc<SharedNetwork>, enabled: bool) -> Browser {
    let mut browser = Browser::with_network(
        engine_for_mode(PolicyMode::Escudo),
        Arc::new(SharedCookieJar::new()),
        Arc::clone(fabric),
    );
    browser.set_response_cache_enabled(enabled);
    browser
}

#[test]
fn cache_on_and_off_runs_are_oracle_equivalent() {
    let run = |enabled: bool| {
        let fabric = Arc::new(SharedNetwork::new());
        register_cache_world(&fabric, "shop.example", "sid", Duration::from_micros(50));
        let mut browser = cache_browser(&fabric, enabled);
        let mut attachments: Vec<Vec<Vec<String>>> = Vec::new();
        browser.navigate("http://shop.example/login.php").unwrap();
        for _ in 0..3 {
            let page = browser.navigate("http://shop.example/index.php").unwrap();
            attachments.push(
                browser
                    .page(page)
                    .subresources
                    .iter()
                    .map(|s| s.attached_cookies.clone())
                    .collect(),
            );
        }
        (fabric.log(), attachments, browser.cache_hits())
    };

    let (on_log, on_attached, hits) = run(true);
    let (off_log, off_attached, off_hits) = run(false);

    // Repeat navigations 2 and 3 served document + every subresource from the
    // cache; the disabled side touched the origin each time.
    assert_eq!(hits, 2 * (1 + CACHE_WORLD_SUBRESOURCES));
    assert_eq!(off_hits, 0);

    // The sequence-sorted logs are byte-identical: a hit is logged under the
    // consuming navigation's own sequence exactly as the live dispatch would
    // have been (method, URL, cookie names, status).
    assert_eq!(on_log.len(), off_log.len());
    for (a, b) in on_log.iter().zip(&off_log) {
        assert_eq!(a, b, "cache-on log diverged from the cache-off oracle");
    }
    assert_eq!(on_attached, off_attached, "mediation plans diverged");
}

#[test]
fn sessions_with_different_cookie_headers_never_share_entries() {
    let fabric = Arc::new(SharedNetwork::new());
    let policy = CookiePolicy::new("sid", Ring::new(1)).with_acl(Acl::uniform(Ring::new(1)));
    {
        let policy = policy.clone();
        fabric.register("http://portal.example", move |req: &Request| {
            if req.url.path() == "/login.php" {
                let user = req.param("user").unwrap_or_default();
                Response::ok_html("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">in</body></html>")
                    .with_cookie(SetCookie::new("sid", user))
                    .with_cookie_policy(&policy)
            } else {
                // The body names the exact Cookie header the origin received:
                // a cross-header cache hit would surface the wrong echo.
                let echo = req.headers.get("Cookie").unwrap_or("").to_string();
                Response::ok_html(format!(
                    "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
                     <p id=\"who\">{echo}</p></body></html>"
                ))
                .with_max_age(3600)
                .with_cookie_policy(&policy)
            }
        });
    }

    let mut alice = cache_browser(&fabric, true);
    let mut bob = cache_browser(&fabric, true);
    alice
        .navigate("http://portal.example/login.php?user=alice")
        .unwrap();
    bob.navigate("http://portal.example/login.php?user=bob")
        .unwrap();

    // Alice stores the entry under her header; Bob's lookup must refuse it.
    let page = alice.navigate("http://portal.example/page.php").unwrap();
    assert_eq!(alice.page(page).text_of("who").unwrap(), "sid=alice");
    let page = bob.navigate("http://portal.example/page.php").unwrap();
    assert_eq!(bob.page(page).text_of("who").unwrap(), "sid=bob");
    assert_eq!(bob.cache_hits(), 0, "Bob must not hit Alice's entry");
    assert_eq!(
        fabric.prefetch_stale_discards(),
        1,
        "Alice's entry is discarded fail-closed, not served"
    );

    // Bob's refetch overwrote the entry under his header; his repeat hits it
    // and Alice's next lookup refuses it in turn.
    let page = bob.navigate("http://portal.example/page.php").unwrap();
    assert_eq!(bob.page(page).text_of("who").unwrap(), "sid=bob");
    assert_eq!(bob.cache_hits(), 1);
    let page = alice.navigate("http://portal.example/page.php").unwrap();
    assert_eq!(alice.page(page).text_of("who").unwrap(), "sid=alice");
    assert_eq!(alice.cache_hits(), 0);
    assert_eq!(fabric.prefetch_stale_discards(), 2);
}

#[test]
fn no_store_and_unmarked_responses_are_never_persisted() {
    let fabric = Arc::new(SharedNetwork::new());
    let dispatches = Arc::new(AtomicU64::new(0));
    {
        let dispatches = Arc::clone(&dispatches);
        fabric.register("http://plain.example", move |req: &Request| {
            dispatches.fetch_add(1, Ordering::Relaxed);
            let page = Response::ok_html(
                "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">fresh</body></html>",
            );
            match req.url.path() {
                // Explicitly uncacheable — even alongside a max-age.
                "/secret.php" => {
                    let mut page = page;
                    page.headers.set("Cache-Control", "no-store, max-age=60");
                    page
                }
                // No explicit max-age: the persistent layer requires one.
                _ => page,
            }
        });
    }

    let mut browser = cache_browser(&fabric, true);
    for _ in 0..2 {
        browser.navigate("http://plain.example/secret.php").unwrap();
        browser.navigate("http://plain.example/page.php").unwrap();
    }
    assert_eq!(
        dispatches.load(Ordering::Relaxed),
        4,
        "every load refetched"
    );
    assert_eq!(browser.cache_hits(), 0);
    assert_eq!(fabric.cache_stored(), 0);
    assert_eq!(fabric.cache_entries(), 0);
}

#[test]
fn ttl_expiry_is_exactly_countable_on_a_manual_clock() {
    let report = run_cache_ttl_walk(4);
    assert_eq!(report.hits, 4, "one fresh hit per cycle");
    assert_eq!(report.expired, 3, "each later cycle finds the last expired");
    assert_eq!(report.stored, 4, "each cycle refills the entry");
}

#[test]
fn duplicate_plan_slots_dispatch_once_and_log_each() {
    let report = run_cache_single_flight(5, 2);
    assert_eq!(report.dispatches, 2, "one origin fetch per batch");
    assert_eq!(
        report.coalesced, 8,
        "four duplicate slots coalesced per load"
    );
    assert_eq!(report.logged, 2 * 6, "every slot logs its own sequence");
}

#[test]
fn set_cookie_responses_are_never_shared_across_sessions() {
    // Every response mints a fresh per-recipient token via `Set-Cookie` —
    // while also (adversarially) declaring itself cacheable with a max-age.
    // Replaying such a response from the shared cache would hand one
    // session's credential to another whose mediated Cookie header happens
    // to match; the cache must refuse the entry outright.
    let fabric = Arc::new(SharedNetwork::new());
    let minted = Arc::new(AtomicU64::new(0));
    {
        let minted = Arc::clone(&minted);
        fabric.register("http://acct.example", move |_req: &Request| {
            let n = minted.fetch_add(1, Ordering::Relaxed);
            Response::ok_html(
                "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">account</body></html>",
            )
            .with_cookie(SetCookie::new("token", format!("u{n}")))
            .with_max_age(3600)
        });
    }

    let mut first = cache_browser(&fabric, true);
    let mut second = cache_browser(&fabric, true);
    first.navigate("http://acct.example/page.php").unwrap();
    second.navigate("http://acct.example/page.php").unwrap();

    assert_eq!(
        fabric.cache_stored(),
        0,
        "a Set-Cookie response must never be admitted"
    );
    assert_eq!(fabric.cache_entries(), 0);
    assert_eq!(second.cache_hits(), 0, "the second session fetched live");

    // Each session holds the token its own live response minted.
    let token = |browser: &Browser| {
        browser
            .cookie_jar()
            .get("acct.example", "token")
            .expect("token stored")
            .value
    };
    assert_eq!(token(&first), "u0");
    assert_eq!(token(&second), "u1");

    // Even a repeat by the storing session refetches: nothing was cached, so
    // the origin mints a third token and the jar follows the live response.
    first.navigate("http://acct.example/page.php").unwrap();
    assert_eq!(first.cache_hits(), 0);
    assert_eq!(token(&first), "u2");
    assert_eq!(minted.load(Ordering::Relaxed), 3);
}

#[test]
fn a_prefetch_only_session_never_consumes_a_persistent_entry() {
    let fabric = Arc::new(SharedNetwork::new());
    let dispatches = Arc::new(AtomicU64::new(0));
    {
        let dispatches = Arc::clone(&dispatches);
        fabric.register("http://news.example", move |_req: &Request| {
            dispatches.fetch_add(1, Ordering::Relaxed);
            Response::ok_html("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">news</body></html>")
                .with_max_age(3600)
        });
    }

    // A cache-enabled session stores the persistent entry.
    let mut cacher = cache_browser(&fabric, true);
    cacher.navigate("http://news.example/page.php").unwrap();
    assert_eq!(fabric.cache_stored(), 1);

    // A session that opted into speculation only (cache off) looks up with
    // the one-shot layer alone: the persistent entry is neither served nor
    // consumed, and the navigation dispatches live.
    let mut speculator = cache_browser(&fabric, false);
    speculator.set_prefetch_enabled(true);
    speculator.navigate("http://news.example/page.php").unwrap();
    assert_eq!(speculator.cache_hits(), 0);
    assert_eq!(speculator.prefetch_hits(), 0);
    assert_eq!(dispatches.load(Ordering::Relaxed), 2, "refetched live");

    // The persistent entry survived the foreign-layer lookup: the storing
    // session's repeat still hits it.
    cacher.navigate("http://news.example/page.php").unwrap();
    assert_eq!(cacher.cache_hits(), 1);
    assert_eq!(dispatches.load(Ordering::Relaxed), 2);
}

#[test]
fn a_cache_only_session_never_consumes_a_one_shot_entry() {
    let fabric = Arc::new(SharedNetwork::new());
    let dispatches = Arc::new(AtomicU64::new(0));
    {
        let dispatches = Arc::clone(&dispatches);
        // No max-age: only the speculative one-shot layer may hold this page.
        fabric.register("http://feed.example", move |_req: &Request| {
            dispatches.fetch_add(1, Ordering::Relaxed);
            Response::ok_html("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">feed</body></html>")
        });
    }

    let mut speculator = cache_browser(&fabric, false);
    speculator.set_prefetch_enabled(true);
    assert!(speculator.prefetch("http://feed.example/next.php"));
    assert_eq!(fabric.prefetched_entries(), 1);

    // A cache-only session looks up with the persistent layer alone: the
    // one-shot entry is left in place and the navigation dispatches live.
    let mut cache_only = cache_browser(&fabric, true);
    cache_only.navigate("http://feed.example/next.php").unwrap();
    assert_eq!(cache_only.cache_hits(), 0);
    assert_eq!(cache_only.prefetch_hits(), 0);
    assert_eq!(fabric.prefetch_hits(), 0);
    assert_eq!(
        fabric.prefetched_entries(),
        1,
        "the speculative entry must survive a cache-only lookup"
    );
    assert_eq!(dispatches.load(Ordering::Relaxed), 2);

    // The speculating session's own navigation consumes it as planned.
    speculator.navigate("http://feed.example/next.php").unwrap();
    assert_eq!(speculator.prefetch_hits(), 1);
    assert_eq!(fabric.prefetched_entries(), 0);
    assert_eq!(dispatches.load(Ordering::Relaxed), 2);
}

#[test]
fn a_coalesced_duplicate_falls_back_with_the_sessions_retry_budget() {
    let fabric = Arc::new(SharedNetwork::new());
    fabric.register("http://dup.example", |_req: &Request| {
        Response::ok_html(
            "<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">\
             <img src=\"http://img.dup.example/x.png\">\
             <img src=\"http://img.dup.example/x.png\"></body></html>",
        )
    });
    fabric.register("http://img.dup.example", |_req: &Request| {
        Response::ok_html("<html><body ring=\"1\" r=\"1\" w=\"1\" x=\"1\">px</body></html>")
    });
    // The first three dispatches to the image origin time out. With a
    // one-retry budget the primary slot spends attempts 0 and 1 and fails;
    // its coalesced duplicate cannot ride the failed dispatch and falls
    // back — attempt 2 fails, its own retry (attempt 3) succeeds. Before
    // the fallback honored the session policy, the duplicate died on its
    // first attempt, degrading harder than the cache-off oracle would.
    fabric.inject_fault("http://img.dup.example", FaultPlan::new().fail_first(3));

    let mut browser = cache_browser(&fabric, true);
    browser.set_fetch_policy(
        FetchPolicy::disabled()
            .with_max_retries(1)
            .with_backoff_base_ns(1),
    );

    let page = browser.navigate("http://dup.example/index.php").unwrap();
    let subs = &browser.page(page).subresources;
    assert_eq!(subs.len(), 2);

    let primary = &subs[0];
    assert_eq!(primary.status, None);
    assert!(
        primary.error.as_deref().unwrap_or("").contains("timed out"),
        "primary slot must exhaust its budget: {primary:?}"
    );
    assert_eq!(primary.retries, 1, "primary spent the full retry budget");

    let duplicate = &subs[1];
    assert_eq!(duplicate.status, Some(200), "fallback retry must succeed");
    assert_eq!(duplicate.error, None);
    assert_eq!(
        duplicate.retries, 1,
        "the fallback dispatch honors the session's retry budget"
    );
}
