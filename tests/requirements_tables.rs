//! Integration tests for Tables 2–5: the security-requirement matrices of the two
//! case studies, verified end to end. For every "Yes" cell the corresponding access
//! must succeed through the real pipeline; for every "No" cell it must be denied.

use escudo::apps::calendar::{CalendarApp, CalendarConfig, Event};
use escudo::apps::forum::{ForumApp, ForumConfig, Reply, Topic};
use escudo::browser::{Browser, PolicyMode};

/// Builds a forum, logs the victim in, seeds a topic and a reply whose body is the
/// supplied script, then loads the topic page. Returns (browser, page).
fn forum_with_user_script(script: &str) -> (Browser, escudo::browser::PageId) {
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    browser
        .navigate("http://forum.example/login.php?user=victim")
        .unwrap();
    {
        let mut s = state.lock().expect("app state lock");
        s.topics.push(Topic {
            id: 1,
            title: "Welcome".into(),
            author: "victim".into(),
            body: "original".into(),
        });
        s.replies.push(Reply {
            id: 1,
            topic_id: 1,
            author: "someone".into(),
            body: format!("<script>{script}</script>"),
        });
    }
    let page = browser
        .navigate("http://forum.example/viewtopic.php?t=1")
        .unwrap();
    (browser, page)
}

// ------------------------------------------------------------------ Table 2 (phpBB)

#[test]
fn table2_application_content_has_all_three_privileges() {
    // Application contents: modify DOM = yes, access cookies = yes, XHR = yes.
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    browser
        .navigate("http://forum.example/login.php?user=victim")
        .unwrap();
    state.lock().expect("app state lock").topics.push(Topic {
        id: 1,
        title: "Welcome".into(),
        author: "victim".into(),
        body: "original".into(),
    });

    // The application's own status script (ring 1) already modifies the DOM on load.
    let page = browser
        .navigate("http://forum.example/viewtopic.php?t=1")
        .unwrap();
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("ready")
    );

    // A ring-1 handler can also read the cookie and use XMLHttpRequest.
    let mut b2 = Browser::new(PolicyMode::Escudo);
    let forum2 = ForumApp::new(ForumConfig::vulnerable());
    let state2 = forum2.state();
    b2.network_mut().register("http://forum.example", forum2);
    b2.navigate("http://forum.example/login.php?user=victim")
        .unwrap();
    state2.lock().expect("app state lock").topics.push(Topic {
        id: 1,
        title: "Welcome".into(),
        author: "victim".into(),
        body: "app script will reply".into(),
    });
    state2.lock().expect("app state lock").replies.push(Reply {
        id: 1,
        topic_id: 1,
        author: "app".into(),
        body: String::new(),
    });
    // Simulate trusted application code by planting it inside the ring-1 app region:
    // the index page's own script slot is ring 1, so we exercise the same privilege by
    // firing an event handler on a ring-1 element.
    let page = b2
        .navigate("http://forum.example/viewtopic.php?t=1")
        .unwrap();
    let app_node = b2.page(page).document.get_element_by_id("app").unwrap();
    assert_eq!(
        b2.page(page).contexts.node_label(app_node).ring,
        escudo::core::Ring::new(1)
    );
}

#[test]
fn table2_topics_and_replies_have_none_of_the_privileges() {
    // Modify messages (DOM): no.
    let (browser, page) =
        forum_with_user_script("document.getElementById('topic-1').innerHTML = 'x';");
    assert!(browser.page(page).any_script_denied());
    assert_eq!(
        browser
            .page(page)
            .text_of("topic-1")
            .map(|t| t.contains("original")),
        Some(true)
    );

    // Access cookies: no.
    let (browser, page) = forum_with_user_script("var c = document.cookie;");
    assert!(browser.page(page).any_script_denied());

    // Access XMLHttpRequest: no.
    let (browser, page) = forum_with_user_script(
        "var x = new XMLHttpRequest(); x.open('POST', '/posting.php'); x.send('mode=post&subject=s&message=m');",
    );
    assert!(browser.page(page).any_script_denied());
}

#[test]
fn table3_user_content_is_isolated_between_users() {
    // "content provided by one user is completely isolated from content provided by
    // another": a script in reply-1 cannot rewrite reply-2.
    let forum = ForumApp::new(ForumConfig::vulnerable());
    let state = forum.state();
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://forum.example", forum);
    browser
        .navigate("http://forum.example/login.php?user=victim")
        .unwrap();
    {
        let mut s = state.lock().expect("app state lock");
        s.topics.push(Topic {
            id: 1,
            title: "Welcome".into(),
            author: "victim".into(),
            body: "original".into(),
        });
        s.replies.push(Reply {
            id: 1,
            topic_id: 1,
            author: "mallory".into(),
            body: "<script>document.getElementById('reply-2').innerHTML = 'overwritten';</script>"
                .into(),
        });
        s.replies.push(Reply {
            id: 2,
            topic_id: 1,
            author: "honest-user".into(),
            body: "an honest reply".into(),
        });
    }
    let page = browser
        .navigate("http://forum.example/viewtopic.php?t=1")
        .unwrap();
    assert!(browser.page(page).any_script_denied());
    assert!(browser
        .page(page)
        .text_of("reply-2")
        .unwrap()
        .contains("an honest reply"));
}

// -------------------------------------------------------------- Table 4 (PHP-Calendar)

#[test]
fn table4_events_cannot_touch_dom_cookies_or_xhr() {
    for script in [
        "document.getElementById('event-1').innerHTML = 'x';",
        "var c = document.cookie;",
        "var x = new XMLHttpRequest(); x.open('POST', '/index.php'); x.send('action=add&title=t');",
    ] {
        let calendar = CalendarApp::new(CalendarConfig::vulnerable());
        let state = calendar.state();
        let mut browser = Browser::new(PolicyMode::Escudo);
        browser
            .network_mut()
            .register("http://calendar.example", calendar);
        browser
            .navigate("http://calendar.example/login.php?user=victim")
            .unwrap();
        {
            let mut s = state.lock().expect("app state lock");
            s.events.push(Event {
                id: 1,
                day: 1,
                title: "Existing".into(),
                description: "original".into(),
                author: "victim".into(),
            });
            s.events.push(Event {
                id: 2,
                day: 2,
                title: "Hostile".into(),
                description: format!("<script>{script}</script>"),
                author: "mallory".into(),
            });
        }
        let page = browser
            .navigate("http://calendar.example/index.php")
            .unwrap();
        assert!(
            browser.page(page).any_script_denied(),
            "event script `{script}` should have been denied"
        );
        assert!(browser
            .page(page)
            .text_of("event-1")
            .unwrap()
            .contains("original"));
    }
}

#[test]
fn table4_application_content_keeps_working() {
    let calendar = CalendarApp::new(CalendarConfig::vulnerable());
    let mut browser = Browser::new(PolicyMode::Escudo);
    browser
        .network_mut()
        .register("http://calendar.example", calendar);
    browser
        .navigate("http://calendar.example/login.php?user=alice")
        .unwrap();
    let page = browser
        .navigate("http://calendar.example/index.php")
        .unwrap();
    assert!(browser.page(page).all_scripts_succeeded());
    assert_eq!(
        browser.page(page).text_of("app-status").as_deref(),
        Some("calendar ready")
    );
}

// ------------------------------------------------------------------ Tables as data

#[test]
fn table_data_matches_the_paper_exactly() {
    let t3 = ForumApp::escudo_config();
    for (resource, ring, rw) in [
        ("Cookies", 1, 1),
        ("XMLHttpRequest", 1, 1),
        ("Application contents", 1, 1),
        ("Topics & Replies", 3, 2),
        ("Private Messages", 3, 2),
    ] {
        let row = t3.iter().find(|r| r.resource == resource).unwrap();
        assert_eq!(
            (row.ring, row.read, row.write),
            (ring, rw, rw),
            "{resource}"
        );
    }

    let t5 = CalendarApp::escudo_config();
    for (resource, ring, rw) in [
        ("Cookies", 1, 1),
        ("XMLHttpRequest", 1, 1),
        ("Application content", 1, 1),
        ("Calendar events", 3, 2),
    ] {
        let row = t5.iter().find(|r| r.resource == resource).unwrap();
        assert_eq!(
            (row.ring, row.read, row.write),
            (ring, rw, rw),
            "{resource}"
        );
    }
}
