//! Engine/decide equivalence: the pluggable engines must return **byte-identical**
//! decisions to the `escudo_core::policy::decide` free function, cached or not.
//!
//! The grid is exhaustive over rings 0..=3 for principal and object, every
//! `Operation`, same- and cross-origin pairs, a spread of ACL variants, and both
//! principal exemption cases (script vs browser chrome).

use std::sync::Arc;

use escudo::core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
use escudo::core::{
    decide, engine_for_mode, Acl, EscudoEngine, Operation, Origin, PolicyEngine, PolicyMode, Ring,
    SameOriginEngine,
};

fn site() -> Origin {
    Origin::new("http", "app.example", 80)
}

fn other_site() -> Origin {
    Origin::new("http", "evil.example", 80)
}

/// The ACL variants of the grid: permissive, ring-0-only, uniform bounds, and mixed
/// per-operation bounds.
fn acl_variants() -> Vec<Acl> {
    let mut acls = vec![Acl::permissive(), Acl::ring_zero_only()];
    for ring in 0u16..=3 {
        acls.push(Acl::uniform(Ring::new(ring)));
    }
    acls.push(Acl::new(Ring::new(2), Ring::new(0), Ring::new(2)));
    acls.push(Acl::new(Ring::new(0), Ring::new(3), Ring::new(1)));
    acls.push(Acl::new(Ring::new(3), Ring::new(1), Ring::new(0)));
    acls
}

/// Every (principal, object, operation) combination of the grid.
fn grid() -> Vec<(PrincipalContext, ObjectContext, Operation)> {
    let mut checks = Vec::new();
    for p_ring in 0u16..=3 {
        for o_ring in 0u16..=3 {
            for acl in acl_variants() {
                for cross in [false, true] {
                    for kind in [PrincipalKind::Script, PrincipalKind::Browser] {
                        for op in Operation::ALL {
                            let p_origin = if cross { other_site() } else { site() };
                            let principal =
                                PrincipalContext::new(kind, p_origin, Ring::new(p_ring));
                            let object = ObjectContext::new(
                                ObjectKind::DomElement,
                                site(),
                                Ring::new(o_ring),
                            )
                            .with_acl(acl);
                            checks.push((principal, object, op));
                        }
                    }
                }
            }
        }
    }
    checks
}

#[test]
fn escudo_engine_matches_decide_cold_and_cached() {
    let engine = EscudoEngine::new();
    let grid = grid();
    // 4 principal rings × 4 object rings × 9 ACLs × 2 origins × 2 kinds × 3 ops.
    assert_eq!(grid.len(), 1728);
    for (principal, object, op) in &grid {
        let expected = decide(PolicyMode::Escudo, principal, object, *op);
        // Cold (first touch) …
        assert_eq!(
            engine.decide(principal, object, *op),
            expected,
            "cold mismatch: {principal} / {object} / {op}"
        );
        // … and cached (second touch) must be byte-identical.
        assert_eq!(
            engine.decide(principal, object, *op),
            expected,
            "cached mismatch: {principal} / {object} / {op}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.decisions, 2 * grid.len() as u64);
    assert!(stats.cache_hits >= grid.len() as u64);
}

#[test]
fn uncached_escudo_engine_matches_decide() {
    let engine = EscudoEngine::with_cache_capacity(0);
    for (principal, object, op) in &grid() {
        assert_eq!(
            engine.decide(principal, object, *op),
            decide(PolicyMode::Escudo, principal, object, *op),
            "uncached mismatch: {principal} / {object} / {op}"
        );
    }
    assert_eq!(engine.stats().cache_hits, 0);
}

#[test]
fn same_origin_engine_matches_same_origin_mode() {
    let engine = SameOriginEngine::new();
    for (principal, object, op) in &grid() {
        assert_eq!(
            engine.decide(principal, object, *op),
            decide(PolicyMode::SameOriginOnly, principal, object, *op),
            "sop mismatch: {principal} / {object} / {op}"
        );
    }
}

#[test]
fn decide_many_matches_decide_for_the_whole_grid() {
    let grid = grid();
    let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> =
        grid.iter().map(|(p, o, op)| (p, o, *op)).collect();
    for mode in [PolicyMode::Escudo, PolicyMode::SameOriginOnly] {
        let engine: Arc<dyn PolicyEngine> = engine_for_mode(mode);
        let decisions = engine.decide_many(&batch);
        assert_eq!(decisions.len(), grid.len());
        for ((principal, object, op), got) in grid.iter().zip(&decisions) {
            assert_eq!(*got, decide(mode, principal, object, *op));
        }
    }
}
