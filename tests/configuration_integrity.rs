//! Integration tests for §5 (security analysis): the configuration itself must be
//! tamper-proof. Covers the two illegal-privilege-elevation routes the paper analyses
//! — a principal trying to raise its own privilege, and a principal trying to create a
//! new principal with elevated privilege — plus the node-splitting defense.

use escudo::browser::{Browser, PolicyMode};
use escudo::core::Ring;
use escudo::net::{Request, Response, Server};

struct Static(&'static str);
impl Server for Static {
    fn handle(&mut self, _req: &Request) -> Response {
        Response::ok_html(self.0)
    }
}

fn load(mode: PolicyMode, html: &'static str) -> (Browser, escudo::browser::PageId) {
    let mut browser = Browser::new(mode);
    browser
        .network_mut()
        .register("http://app.example", Static(html));
    let page = browser.navigate("http://app.example/").unwrap();
    (browser, page)
}

/// §5(1): "A JavaScript program may attempt to remap an AC tag to a higher privileged
/// ring using the DOM API function setAttribute … such attempts to modify the
/// attributes cannot succeed."
#[test]
fn remapping_rings_via_set_attribute_fails() {
    let html = r#"<html><body ring=1 r=1 w=1 x=1>
        <div ring=3 r=3 w=3 x=3 id=user>
          <script>document.getElementById('user').setAttribute('ring', '0');</script>
          <script>document.getElementById('user').setAttribute('w', '3');</script>
        </div>
    </body></html>"#;
    let (browser, page) = load(PolicyMode::Escudo, html);
    // Both scripts were stopped.
    assert_eq!(browser.page(page).script_outcomes.len(), 2);
    assert!(browser
        .page(page)
        .script_outcomes
        .iter()
        .all(|o| o.was_denied()));
    // The security-context table still holds the original ring.
    let doc = &browser.page(page).document;
    let user = doc.get_element_by_id("user").unwrap();
    assert_eq!(
        browser.page(page).contexts.node_label(user).ring,
        Ring::new(3)
    );
    // And the DOM attribute itself is unchanged.
    assert_eq!(doc.attribute(user, "ring"), Some("3"));
}

/// §5(2), static variant: node-splitting. A forged `</div>` without the matching nonce
/// is ignored by the ESCUDO parser, so the injected "high-privilege" region stays
/// inside the low-privilege scope and is clamped by the scoping rule.
#[test]
fn node_splitting_is_rejected_by_nonce_validation() {
    let html = r#"<html><body ring=1 r=1 w=1 x=1>
        <div ring=3 r=3 w=3 x=3 nonce=777 id=user-region>
          user text</div><div ring=0 r=0 w=0 x=0 id=injected>
          <script>document.cookie = 'stolen=1';</script>
        </div nonce=777>
    </body></html>"#;
    let (browser, page) = load(PolicyMode::Escudo, html);
    // The forged close tag was rejected…
    assert_eq!(browser.page(page).parse_report.rejected_end_tags, 1);
    // …so the injected div is still inside the user region and clamped to ring 3.
    let doc = &browser.page(page).document;
    let region = doc.get_element_by_id("user-region").unwrap();
    let injected = doc.get_element_by_id("injected").unwrap();
    assert!(doc.is_inclusive_ancestor(region, injected));
    assert_eq!(
        browser.page(page).contexts.node_label(injected).ring,
        Ring::new(3)
    );
    // The script that hoped to run in ring 0 was denied when it touched the cookie.
    assert!(browser.page(page).any_script_denied());

    // A legacy browser accepts the split: the injected region escapes.
    let (legacy_browser, legacy_page) = load(PolicyMode::SameOriginOnly, html);
    let doc = &legacy_browser.page(legacy_page).document;
    let region = doc.get_element_by_id("user-region").unwrap();
    let injected = doc.get_element_by_id("injected").unwrap();
    assert!(!doc.is_inclusive_ancestor(region, injected));
    assert_eq!(
        legacy_browser
            .page(legacy_page)
            .parse_report
            .rejected_end_tags,
        0
    );
}

/// §5(2), dynamic variant: "a malicious principal cannot create a new principal that
/// has higher privileges than itself" — content created through the DOM API is clamped
/// to its creator's ring even if it declares `ring="0"`.
#[test]
fn dynamically_created_content_is_clamped_to_its_creator() {
    let html = r#"<html><body ring=1 r=1 w=1 x=1>
        <div id=sandbox ring=3 r=3 w=3 x=3>
          <script>
            var escape = document.createElement('div');
            escape.setAttribute('id', 'wannabe-kernel');
            document.getElementById('sandbox').appendChild(escape);
            escape.innerHTML = '<b id=payload>still ring 3</b>';
          </script>
        </div>
    </body></html>"#;
    let (browser, page) = load(PolicyMode::Escudo, html);
    // The script itself is allowed: it only touches its own ring-3 region.
    assert!(
        browser.page(page).all_scripts_succeeded(),
        "{:?}",
        browser.page(page).script_outcomes
    );
    let doc = &browser.page(page).document;
    let created = doc.get_element_by_id("wannabe-kernel").unwrap();
    let payload = doc.get_element_by_id("payload").unwrap();
    assert_eq!(
        browser.page(page).contexts.node_label(created).ring,
        Ring::new(3)
    );
    assert_eq!(
        browser.page(page).contexts.node_label(payload).ring,
        Ring::new(3)
    );
}

/// The scoping rule also applies statically: an inner AC tag cannot declare more
/// privilege than its enclosing scope.
#[test]
fn nested_ac_tags_cannot_escalate() {
    let html = r#"<html><body ring=2 r=2 w=2 x=2>
        <div ring=0 r=0 w=0 x=0 id=inner>
          <script>document.cookie = 'planted=1';</script>
        </div>
    </body></html>"#;
    let (browser, page) = load(PolicyMode::Escudo, html);
    let doc = &browser.page(page).document;
    let inner = doc.get_element_by_id("inner").unwrap();
    assert_eq!(
        browser.page(page).contexts.node_label(inner).ring,
        Ring::new(2)
    );
}

/// Browser state (history, visited links) is mandatorily ring 0: application scripts
/// outside ring 0 cannot read it, scripts in ring 0 can.
#[test]
fn browser_state_is_ring_zero_only() {
    // Note the ring-0 region lives in the head, outside the ring-1 body — the scoping
    // rule forbids a ring-0 scope nested inside a less privileged one (that nesting is
    // itself covered by `nested_ac_tags_cannot_escalate`).
    let html = r#"<html>
    <head><div ring=0 r=0 w=0 x=0>
        <script>var l = history.length;</script>
    </div></head>
    <body ring=1 r=1 w=1 x=1>
        <div id=out>none</div>
        <script>document.getElementById('out').innerHTML = 'len=' + history.length;</script>
    </body></html>"#;
    let (browser, page) = load(PolicyMode::Escudo, html);
    let outcomes = &browser.page(page).script_outcomes;
    assert_eq!(outcomes.len(), 2);
    // The ring-0 script (document order: head first) reads the history length…
    assert!(outcomes[0].succeeded());
    // …while the ring-1 application script is denied access to browser state.
    assert!(outcomes[1].was_denied());
    assert_eq!(browser.page(page).text_of("out").as_deref(), Some("none"));
}
