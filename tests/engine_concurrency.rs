//! Concurrency equivalence: 8 threads hammering one shared [`EscudoEngine`] with
//! *overlapping* contexts must return decisions byte-identical to the
//! single-threaded `escudo_core::policy::decide` oracle — for every thread, every
//! check, every interleaving — and the engine's statistics must stay
//! self-consistent while a concurrent reader watches them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use escudo::core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
use escudo::core::{
    decide, Acl, ContextInterner, EscudoEngine, Operation, Origin, PolicyEngine, PolicyMode, Ring,
};

const THREADS: usize = 8;
const PASSES: usize = 20;

fn origins() -> Vec<Origin> {
    vec![
        Origin::new("http", "forum.example", 80),
        Origin::new("https", "blog.example", 443),
        Origin::new("http", "calendar.example", 80),
    ]
}

/// A deliberately overlapping check set: every thread evaluates the same grid, so
/// threads constantly race on interning the same contexts and on the same cache
/// shards (first-touch interning, cache fills, hits and evictions all interleave).
fn overlapping_checks() -> Vec<(PrincipalContext, ObjectContext, Operation)> {
    let mut checks = Vec::new();
    for (i, p_origin) in origins().iter().enumerate() {
        for p_ring in 0u16..4 {
            let principal = PrincipalContext::new(
                if p_ring == 0 && i == 0 {
                    PrincipalKind::Browser
                } else {
                    PrincipalKind::Script
                },
                p_origin.clone(),
                Ring::new(p_ring),
            );
            for o_origin in origins() {
                for o_ring in 0u16..4 {
                    let object = ObjectContext::new(
                        ObjectKind::DomElement,
                        o_origin.clone(),
                        Ring::new(o_ring),
                    )
                    .with_acl(Acl::new(
                        Ring::new(o_ring),
                        Ring::new(o_ring.saturating_sub(1)),
                        Ring::new(o_ring),
                    ));
                    for op in Operation::ALL {
                        checks.push((principal.clone(), object.clone(), op));
                    }
                }
            }
        }
    }
    checks
}

#[test]
fn eight_threads_match_the_single_threaded_oracle() {
    let engine = Arc::new(EscudoEngine::new());
    let checks = overlapping_checks();
    // Precompute the oracle single-threaded; the engine must never diverge from it.
    let expected: Vec<_> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();

    thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            let expected = &expected;
            scope.spawn(move || {
                for pass in 0..PASSES {
                    // Each thread walks the grid from a different offset so the
                    // interleavings differ while the context sets fully overlap.
                    let offset = (t * 131 + pass * 17) % checks.len();
                    for i in 0..checks.len() {
                        let idx = (offset + i) % checks.len();
                        let (p, o, op) = &checks[idx];
                        assert_eq!(
                            engine.decide(p, o, *op),
                            expected[idx],
                            "thread {t} pass {pass}: divergence at {p} / {o} / {op}"
                        );
                    }
                }
            });
        }
    });

    // Post-run bookkeeping: every decision was counted, the split is exact, and the
    // per-shard counters sum to the aggregates.
    let stats = engine.stats();
    let total = (THREADS * PASSES * checks.len()) as u64;
    assert_eq!(stats.decisions, total);
    assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
    assert!(stats.cache_hits <= stats.decisions);
    assert_eq!(
        stats.shards.iter().map(|s| s.hits).sum::<u64>(),
        stats.cache_hits
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.misses).sum::<u64>(),
        stats.cache_misses
    );
    // Distinct contexts were interned exactly once despite racing first touches.
    assert_eq!(stats.interned_principals, 12);
    assert_eq!(stats.interned_objects, 12);
    // Steady state: after the first pass everything is a cache hit, so misses are a
    // sliver of the total (no evictions at this working-set size).
    assert_eq!(stats.evictions, 0);
    // Racing threads may each record a first-touch miss for the same key before one
    // of them fills it, so the bound is per-thread, not per-key.
    assert!(
        stats.cache_misses <= (checks.len() * THREADS) as u64,
        "misses should be first-touch only: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.9, "steady state: {stats:?}");
}

/// A fresh context pair no other storm participant shares unless given the same
/// coordinates — distinct origins are the realistic distinguisher.
fn storm_pair(tag: &str, index: usize) -> (PrincipalContext, ObjectContext) {
    let origin = Origin::new("http", &format!("{tag}{index}.fresh.example"), 80);
    let ring = Ring::new((index % 4) as u16);
    let principal = PrincipalContext::new(PrincipalKind::Script, origin.clone(), ring);
    let object = ObjectContext::new(ObjectKind::DomElement, origin, ring)
        .with_acl(Acl::uniform(Ring::new((index % 3) as u16)));
    (principal, object)
}

#[test]
fn first_touch_storm_interns_densely_without_duplicates() {
    // 8 threads × (overlapping + disjoint fresh contexts) against one lock-free
    // interner: every thread must observe ONE dense id per key (losers adopt the
    // winner's), no id may be burned by a lost claim, and a lookup immediately
    // after an intern must hit.
    const SHARED: usize = 48;
    const DISJOINT: usize = 24;
    let interner = ContextInterner::new();
    let shared: Vec<_> = (0..SHARED).map(|i| storm_pair("shared", i)).collect();
    let barrier = Barrier::new(THREADS);

    let observed: Vec<Vec<(usize, u32, u32)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let interner = &interner;
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    let own: Vec<_> = (0..DISJOINT)
                        .map(|i| storm_pair(&format!("t{t}d"), i))
                        .collect();
                    barrier.wait();
                    let mut seen = Vec::new();
                    // Offset walks: threads hit the same shared keys at
                    // different moments while the sets fully overlap.
                    let offset = t * 11 % SHARED;
                    for i in 0..SHARED {
                        let idx = (offset + i) % SHARED;
                        let (principal, object) = &shared[idx];
                        let pid = interner.intern_principal(principal);
                        let oid = interner.intern_object(object);
                        // Lookup after intern always hits, mid-storm included.
                        assert_eq!(interner.lookup_principal(principal), Some(pid));
                        assert_eq!(interner.lookup_object(object), Some(oid));
                        seen.push((idx, pid.index(), oid.index()));
                    }
                    for (principal, object) in &own {
                        let pid = interner.intern_principal(principal);
                        assert_eq!(interner.lookup_principal(principal), Some(pid));
                        interner.intern_object(object);
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm thread panicked"))
            .collect()
    });

    // Dense: exactly the distinct population, despite every shared key being
    // claimed by 8 racing threads.
    let population = SHARED + THREADS * DISJOINT;
    assert_eq!(interner.principal_count(), population);
    assert_eq!(interner.object_count(), population);

    // No duplicates: every thread resolved each shared key to the same id.
    let mut principal_ids = vec![None; SHARED];
    let mut object_ids = vec![None; SHARED];
    for thread_view in &observed {
        for &(idx, pid, oid) in thread_view {
            assert!(
                (pid as usize) < population,
                "principal id out of dense range"
            );
            assert!((oid as usize) < population, "object id out of dense range");
            match principal_ids[idx] {
                None => principal_ids[idx] = Some(pid),
                Some(expected) => {
                    assert_eq!(pid, expected, "shared key {idx} got two principal ids")
                }
            }
            match object_ids[idx] {
                None => object_ids[idx] = Some(oid),
                Some(expected) => assert_eq!(oid, expected, "shared key {idx} got two object ids"),
            }
        }
    }
    // The shared ids are distinct from one another (no two keys collapsed).
    let mut unique: Vec<u32> = principal_ids.iter().map(|id| id.unwrap()).collect();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), SHARED, "two shared principals shared an id");
}

#[test]
fn first_touch_storm_decisions_match_the_oracle() {
    // The storm seen through the full engine: 8 threads deciding over fresh
    // overlapping + disjoint contexts (so interning, cache fills and decision
    // computation all race on first touch). Every decision must be
    // byte-identical to the single-threaded `policy::decide` oracle.
    const SHARED: usize = 32;
    const DISJOINT: usize = 16;
    let engine = Arc::new(EscudoEngine::new());
    let shared: Vec<_> = (0..SHARED).map(|i| storm_pair("dshared", i)).collect();
    let barrier = Barrier::new(THREADS);

    thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let shared = &shared;
            let barrier = &barrier;
            scope.spawn(move || {
                let own: Vec<_> = (0..DISJOINT)
                    .map(|i| storm_pair(&format!("dt{t}"), i))
                    .collect();
                barrier.wait();
                for (principal, object) in shared.iter().chain(&own) {
                    for op in Operation::ALL {
                        assert_eq!(
                            engine.decide(principal, object, op),
                            decide(PolicyMode::Escudo, principal, object, op),
                            "storm decision diverged for {principal} / {object} / {op}"
                        );
                    }
                }
            });
        }
    });

    let stats = engine.stats();
    let population = (SHARED + THREADS * DISJOINT) as u64;
    assert_eq!(stats.interned_principals, population);
    assert_eq!(stats.interned_objects, population);
    assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
    assert_eq!(
        stats.decisions,
        (THREADS * (SHARED + DISJOINT) * Operation::ALL.len()) as u64
    );
    // The new observability counters are present and sane: depth is at least 1
    // once anything is interned, and CAS retries only count genuine races.
    assert!(stats.interner_max_bucket_depth >= 1);
    assert!(stats.interner_cas_retries <= stats.decisions);
}

#[test]
fn decide_many_is_oracle_identical_under_concurrency() {
    let engine = Arc::new(EscudoEngine::new());
    let checks = overlapping_checks();
    let expected: Vec<_> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();

    thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            let expected = &expected;
            scope.spawn(move || {
                let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> =
                    checks.iter().map(|(p, o, op)| (p, o, *op)).collect();
                for _ in 0..5 {
                    assert_eq!(&engine.decide_many(&batch), expected);
                }
            });
        }
    });
    assert_eq!(engine.stats().decisions, (4 * 5 * checks.len()) as u64);
}

#[test]
fn stats_snapshots_stay_consistent_while_deciders_run() {
    // A tiny sharded cache under heavy churn: evictions fire constantly while a
    // dedicated reader thread takes snapshots. Every snapshot must satisfy the
    // self-consistency contract — this is the regression test for the old engine,
    // where `hits`/`decisions` were bumped separately after the lock was dropped and
    // a reader could observe `hits > decisions`.
    let engine = Arc::new(EscudoEngine::with_shards(4, 64));
    let checks = overlapping_checks();
    let stop = AtomicBool::new(false);

    thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            scope.spawn(move || {
                for _ in 0..10 {
                    for (p, o, op) in checks {
                        assert_eq!(
                            engine.decide(p, o, *op),
                            decide(PolicyMode::Escudo, p, o, *op)
                        );
                    }
                }
            });
        }
        let reader_engine = Arc::clone(&engine);
        let stop = &stop;
        let reader = scope.spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let stats = reader_engine.stats();
                assert!(
                    stats.cache_hits <= stats.decisions,
                    "snapshot shows more hits than decisions: {stats:?}"
                );
                assert_eq!(
                    stats.decisions,
                    stats.cache_hits + stats.cache_misses,
                    "snapshot decisions must be the exact hit/miss sum: {stats:?}"
                );
                assert_eq!(
                    stats.shards.iter().map(|s| s.hits).sum::<u64>(),
                    stats.cache_hits
                );
                snapshots += 1;
            }
            snapshots
        });
        // The worker handles are joined implicitly at scope exit, which would wait on
        // the reader too — so watch the decision count from here and stop the reader
        // once the workers' quota is reached (with a generous timeout escape so a
        // failing worker can surface its panic instead of hanging the test).
        for _ in 0..6000 {
            if engine.stats().decisions >= (4 * 10 * checks.len()) as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = reader.join().expect("stats reader panicked");
        assert!(snapshots > 0, "the reader should have observed snapshots");
    });

    // The tiny cache must have churned: evictions happened, yet every decision above
    // matched the oracle and the final books balance.
    let stats = engine.stats();
    assert!(
        stats.evictions > 0,
        "64-slot cache under a 432-key workload must evict"
    );
    assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
}

/// ISSUE 7's hot-reload storm: 8 threads stream `decide_many` plans through a
/// tenant's generation-swapped [`EngineHandle`] while the control plane swaps
/// the engine between the ESCUDO and same-origin generations mid-flight.
///
/// * every observed plan must be byte-identical to exactly **one** generation's
///   `policy::decide` oracle — a plan matching neither tore across a swap,
/// * retired generations must actually drop once their last reader lets go:
///   a [`Weak`] witness per swap proves no generation leaks through the handle.
#[test]
fn generation_swaps_mid_flight_never_tear_a_plan_and_never_leak() {
    use escudo::core::tenant::{EngineReader, Tenant, TenantConfig};
    use escudo::core::Decision;
    use std::sync::Weak;

    const SWAPS: usize = 12;

    let checks = overlapping_checks();
    let escudo_oracle: Vec<Decision> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();
    let sop_oracle: Vec<Decision> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::SameOriginOnly, p, o, *op))
        .collect();
    // The grid must distinguish the generations or the torn-plan check is vacuous
    // (same-origin ring-crossing pairs decide differently under the two modes).
    assert_ne!(escudo_oracle, sop_oracle);

    let tenant = Arc::new(Tenant::new("storm", TenantConfig::default()));
    let barrier = Barrier::new(THREADS + 1);
    let witnesses: Vec<Weak<escudo::core::tenant::EngineGeneration>> = thread::scope(|scope| {
        for _ in 0..THREADS {
            let tenant = Arc::clone(&tenant);
            let barrier = &barrier;
            let checks = &checks;
            let escudo_oracle = &escudo_oracle;
            let sop_oracle = &sop_oracle;
            scope.spawn(move || {
                // Each reader pins a generation per plan, exactly like the Erm:
                // refresh at the plan boundary, decide the whole batch on the
                // pinned engine, never mid-plan.
                let mut reader = EngineReader::new(tenant.handle().clone());
                let refs: Vec<_> = checks.iter().map(|(p, o, op)| (p, o, *op)).collect();
                barrier.wait();
                for pass in 0..PASSES {
                    let generation = Arc::clone(reader.refresh());
                    let observed = generation.engine().decide_many(&refs);
                    assert_eq!(observed.len(), refs.len(), "dropped decisions");
                    assert!(
                        observed == *escudo_oracle || observed == *sop_oracle,
                        "pass {pass} tore across generations: plan matches neither \
                         generation's oracle (generation {})",
                        generation.generation()
                    );
                    // The plan's mode must agree with the generation it pinned.
                    let expected: &Vec<Decision> = match generation.engine().mode() {
                        PolicyMode::Escudo => escudo_oracle,
                        PolicyMode::SameOriginOnly => sop_oracle,
                    };
                    assert_eq!(&observed, expected, "plan diverged from its own generation");
                }
            });
        }

        // The control plane swaps generations while the readers stream plans,
        // keeping a Weak witness on every retired generation.
        barrier.wait();
        let mut witnesses = Vec::with_capacity(SWAPS);
        for swap in 0..SWAPS {
            let mode = if swap % 2 == 0 {
                PolicyMode::SameOriginOnly
            } else {
                PolicyMode::Escudo
            };
            let retired =
                tenant.reload_with(TenantConfig::default().with_mode(mode).build_engine());
            witnesses.push(Arc::downgrade(&retired));
            drop(retired);
            thread::yield_now();
        }
        witnesses
    });

    // Every reader has exited, dropping its pinned generation; the handle holds
    // only the current generation, which was never retired. Every witness must
    // be dead — a live one is a leaked generation.
    assert_eq!(tenant.generation(), (SWAPS + 1) as u64);
    let alive = witnesses.iter().filter(|w| w.upgrade().is_some()).count();
    assert_eq!(alive, 0, "{alive} retired generations still alive (leak)");
}
