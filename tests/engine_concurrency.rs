//! Concurrency equivalence: 8 threads hammering one shared [`EscudoEngine`] with
//! *overlapping* contexts must return decisions byte-identical to the
//! single-threaded `escudo_core::policy::decide` oracle — for every thread, every
//! check, every interleaving — and the engine's statistics must stay
//! self-consistent while a concurrent reader watches them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use escudo::core::context::{ObjectContext, ObjectKind, PrincipalContext, PrincipalKind};
use escudo::core::{decide, Acl, EscudoEngine, Operation, Origin, PolicyEngine, PolicyMode, Ring};

const THREADS: usize = 8;
const PASSES: usize = 20;

fn origins() -> Vec<Origin> {
    vec![
        Origin::new("http", "forum.example", 80),
        Origin::new("https", "blog.example", 443),
        Origin::new("http", "calendar.example", 80),
    ]
}

/// A deliberately overlapping check set: every thread evaluates the same grid, so
/// threads constantly race on interning the same contexts and on the same cache
/// shards (first-touch interning, cache fills, hits and evictions all interleave).
fn overlapping_checks() -> Vec<(PrincipalContext, ObjectContext, Operation)> {
    let mut checks = Vec::new();
    for (i, p_origin) in origins().iter().enumerate() {
        for p_ring in 0u16..4 {
            let principal = PrincipalContext::new(
                if p_ring == 0 && i == 0 {
                    PrincipalKind::Browser
                } else {
                    PrincipalKind::Script
                },
                p_origin.clone(),
                Ring::new(p_ring),
            );
            for o_origin in origins() {
                for o_ring in 0u16..4 {
                    let object = ObjectContext::new(
                        ObjectKind::DomElement,
                        o_origin.clone(),
                        Ring::new(o_ring),
                    )
                    .with_acl(Acl::new(
                        Ring::new(o_ring),
                        Ring::new(o_ring.saturating_sub(1)),
                        Ring::new(o_ring),
                    ));
                    for op in Operation::ALL {
                        checks.push((principal.clone(), object.clone(), op));
                    }
                }
            }
        }
    }
    checks
}

#[test]
fn eight_threads_match_the_single_threaded_oracle() {
    let engine = Arc::new(EscudoEngine::new());
    let checks = overlapping_checks();
    // Precompute the oracle single-threaded; the engine must never diverge from it.
    let expected: Vec<_> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();

    thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            let expected = &expected;
            scope.spawn(move || {
                for pass in 0..PASSES {
                    // Each thread walks the grid from a different offset so the
                    // interleavings differ while the context sets fully overlap.
                    let offset = (t * 131 + pass * 17) % checks.len();
                    for i in 0..checks.len() {
                        let idx = (offset + i) % checks.len();
                        let (p, o, op) = &checks[idx];
                        assert_eq!(
                            engine.decide(p, o, *op),
                            expected[idx],
                            "thread {t} pass {pass}: divergence at {p} / {o} / {op}"
                        );
                    }
                }
            });
        }
    });

    // Post-run bookkeeping: every decision was counted, the split is exact, and the
    // per-shard counters sum to the aggregates.
    let stats = engine.stats();
    let total = (THREADS * PASSES * checks.len()) as u64;
    assert_eq!(stats.decisions, total);
    assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
    assert!(stats.cache_hits <= stats.decisions);
    assert_eq!(
        stats.shards.iter().map(|s| s.hits).sum::<u64>(),
        stats.cache_hits
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.misses).sum::<u64>(),
        stats.cache_misses
    );
    // Distinct contexts were interned exactly once despite racing first touches.
    assert_eq!(stats.interned_principals, 12);
    assert_eq!(stats.interned_objects, 12);
    // Steady state: after the first pass everything is a cache hit, so misses are a
    // sliver of the total (no evictions at this working-set size).
    assert_eq!(stats.evictions, 0);
    // Racing threads may each record a first-touch miss for the same key before one
    // of them fills it, so the bound is per-thread, not per-key.
    assert!(
        stats.cache_misses <= (checks.len() * THREADS) as u64,
        "misses should be first-touch only: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.9, "steady state: {stats:?}");
}

#[test]
fn decide_many_is_oracle_identical_under_concurrency() {
    let engine = Arc::new(EscudoEngine::new());
    let checks = overlapping_checks();
    let expected: Vec<_> = checks
        .iter()
        .map(|(p, o, op)| decide(PolicyMode::Escudo, p, o, *op))
        .collect();

    thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            let expected = &expected;
            scope.spawn(move || {
                let batch: Vec<(&PrincipalContext, &ObjectContext, Operation)> =
                    checks.iter().map(|(p, o, op)| (p, o, *op)).collect();
                for _ in 0..5 {
                    assert_eq!(&engine.decide_many(&batch), expected);
                }
            });
        }
    });
    assert_eq!(engine.stats().decisions, (4 * 5 * checks.len()) as u64);
}

#[test]
fn stats_snapshots_stay_consistent_while_deciders_run() {
    // A tiny sharded cache under heavy churn: evictions fire constantly while a
    // dedicated reader thread takes snapshots. Every snapshot must satisfy the
    // self-consistency contract — this is the regression test for the old engine,
    // where `hits`/`decisions` were bumped separately after the lock was dropped and
    // a reader could observe `hits > decisions`.
    let engine = Arc::new(EscudoEngine::with_shards(4, 64));
    let checks = overlapping_checks();
    let stop = AtomicBool::new(false);

    thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let checks = &checks;
            scope.spawn(move || {
                for _ in 0..10 {
                    for (p, o, op) in checks {
                        assert_eq!(
                            engine.decide(p, o, *op),
                            decide(PolicyMode::Escudo, p, o, *op)
                        );
                    }
                }
            });
        }
        let reader_engine = Arc::clone(&engine);
        let stop = &stop;
        let reader = scope.spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let stats = reader_engine.stats();
                assert!(
                    stats.cache_hits <= stats.decisions,
                    "snapshot shows more hits than decisions: {stats:?}"
                );
                assert_eq!(
                    stats.decisions,
                    stats.cache_hits + stats.cache_misses,
                    "snapshot decisions must be the exact hit/miss sum: {stats:?}"
                );
                assert_eq!(
                    stats.shards.iter().map(|s| s.hits).sum::<u64>(),
                    stats.cache_hits
                );
                snapshots += 1;
            }
            snapshots
        });
        // The worker handles are joined implicitly at scope exit, which would wait on
        // the reader too — so watch the decision count from here and stop the reader
        // once the workers' quota is reached (with a generous timeout escape so a
        // failing worker can surface its panic instead of hanging the test).
        for _ in 0..6000 {
            if engine.stats().decisions >= (4 * 10 * checks.len()) as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = reader.join().expect("stats reader panicked");
        assert!(snapshots > 0, "the reader should have observed snapshots");
    });

    // The tiny cache must have churned: evictions happened, yet every decision above
    // matched the oracle and the final books balance.
    let stats = engine.stats();
    assert!(
        stats.evictions > 0,
        "64-slot cache under a 432-key workload must evict"
    );
    assert_eq!(stats.decisions, stats.cache_hits + stats.cache_misses);
}
