//! End-to-end guarantees of the pipelined subresource loader over the shared
//! network fabric:
//!
//! * recorded outcomes and the sequence-sorted request log read in **document
//!   order** under adversarially skewed (randomized-per-origin) latencies,
//! * attached cookie names are **byte-identical** to the sequential oracle path
//!   (workers = 1), because mediation is fixed in phase 1 before any fetch,
//! * 8 sessions sharing one fabric + jar + engine leak nothing across sessions,
//! * a navigation's critical batch **preempts** a draining bulk batch at a
//!   request boundary, and a continuous navigation storm never **starves** the
//!   bulk lane (the anti-starvation credit), and
//! * speculative prefetch is **oracle-equivalent**: prefetch on vs off produces
//!   byte-identical mediation decisions, attachments and request logs.
//!
//! The worlds are built by `escudo_bench::loader` and `escudo_bench::scheduler`
//! — the same builders the `loader_concurrent` and `scheduler_concurrent` CI
//! gates drive — so the benches and these tests cannot silently diverge in
//! what they validate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use escudo::browser::Browser;
use escudo::core::{engine_for_mode, EscudoEngine, PolicyEngine, PolicyMode};
use escudo::net::{SharedCookieJar, SharedNetwork};
use escudo_bench::loader::{register_loader_world, reverse_skewed_latency};
use escudo_bench::scheduler::{register_nav_world, run_prefetch_oracle, NAV_PAGE_URL};

const IMAGES: usize = 8;
const ORIGINS: usize = 4;

fn browser_over(fabric: &Arc<SharedNetwork>, workers: usize) -> Browser {
    let mut browser = Browser::with_network(
        engine_for_mode(PolicyMode::Escudo),
        Arc::new(SharedCookieJar::new()),
        Arc::clone(fabric),
    );
    browser.set_subresource_workers(workers);
    browser
}

/// A fresh fabric serving the standard loader world at `site.example`, image
/// origins reverse-skewed so the *first* image in document order is the slowest.
fn skewed_fabric() -> Arc<SharedNetwork> {
    let fabric = Arc::new(SharedNetwork::new());
    register_loader_world(&fabric, "site.example", "sid", IMAGES, ORIGINS, |k| {
        reverse_skewed_latency(ORIGINS, k)
    });
    fabric
}

#[test]
fn outcomes_and_log_are_in_document_order_under_skewed_latency() {
    let fabric = skewed_fabric();
    let mut browser = browser_over(&fabric, 8);

    let page = browser.navigate("http://site.example/index.php").unwrap();
    let page = browser.page(page);
    assert_eq!(page.stats.subresource_requests, IMAGES as u64);
    assert_eq!(page.subresources.len(), IMAGES);

    // Document order: img i lives at img{i % ORIGINS}.site.example/img{i}.png.
    for (i, outcome) in page.subresources.iter().enumerate() {
        assert_eq!(
            outcome.url.to_string(),
            format!("http://img{}.site.example/img{i}.png", i % ORIGINS),
            "outcome {i} out of document order"
        );
        assert!(outcome.succeeded(), "outcome {i}: {outcome:?}");
        // Phase-1 mediation attached the ring-1 session cookie to every image.
        assert_eq!(outcome.attached_cookies, vec!["sid".to_string()]);
    }

    // The sequence-sorted shared log: main page first, then the images in
    // document order, every image request carrying the session cookie.
    let log = fabric.log();
    assert_eq!(log.len(), IMAGES + 1);
    assert_eq!(log[0].url.path(), "/index.php");
    for (i, entry) in log[1..].iter().enumerate() {
        assert_eq!(entry.url.path(), format!("/img{i}.png"));
        assert_eq!(entry.cookie_names, vec!["sid".to_string()]);
        assert_eq!(entry.status, 200);
    }
}

#[test]
fn pipelined_run_matches_the_sequential_oracle_byte_for_byte() {
    let run = |workers: usize| {
        let fabric = skewed_fabric();
        let mut browser = browser_over(&fabric, workers);
        let mut attached: Vec<Vec<Vec<String>>> = Vec::new();
        for _ in 0..3 {
            let page = browser.navigate("http://site.example/index.php").unwrap();
            attached.push(
                browser
                    .page(page)
                    .subresources
                    .iter()
                    .map(|s| s.attached_cookies.clone())
                    .collect(),
            );
        }
        (fabric.log(), attached)
    };
    let (pipelined_log, pipelined_attached) = run(8);
    let (sequential_log, sequential_attached) = run(1);
    // Byte-identical logs (method, URL, cookie names, status — in order) and
    // identical per-subresource attachments: the transport cannot influence
    // mediation, and sequence reservation fixes the order.
    assert_eq!(pipelined_log, sequential_log);
    assert_eq!(pipelined_attached, sequential_attached);
}

#[test]
fn eight_sessions_sharing_one_fabric_stay_isolated() {
    let fabric = Arc::new(SharedNetwork::new());
    let engine = Arc::new(EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    const SESSIONS: usize = 8;
    for t in 0..SESSIONS {
        register_loader_world(
            &fabric,
            &format!("site{t}.example"),
            &format!("sid{t}"),
            IMAGES,
            ORIGINS,
            |k| Duration::from_micros(k as u64 * 120 + 60),
        );
    }

    thread::scope(|scope| {
        for t in 0..SESSIONS {
            let fabric = Arc::clone(&fabric);
            let engine: Arc<dyn PolicyEngine> = Arc::clone(&engine) as _;
            let jar = Arc::clone(&jar);
            scope.spawn(move || {
                let mut browser = Browser::with_network(engine, jar, fabric);
                browser.set_subresource_workers(4);
                for _ in 0..2 {
                    browser
                        .navigate(&format!("http://site{t}.example/index.php"))
                        .unwrap();
                }
            });
        }
    });

    // 8 sessions × 2 rounds × (1 page + IMAGES images), one shared log.
    let log = fabric.log();
    assert_eq!(log.len(), SESSIONS * 2 * (IMAGES + 1));
    for t in 0..SESSIONS {
        let own = format!("sid{t}");
        let site = format!("site{t}.example");
        let mut own_attached = 0usize;
        for entry in log.iter().filter(|e| e.url.host().ends_with(&site)) {
            for name in &entry.cookie_names {
                assert_eq!(
                    name,
                    &own,
                    "cookie {name} leaked onto session {t}'s host {}",
                    entry.url.host()
                );
            }
            own_attached += entry.cookie_names.len();
        }
        // Round 2's page and image requests all carry the session cookie stored
        // in round 1 (round 1's images attach it too — same-page store).
        assert!(own_attached >= IMAGES, "session {t} never attached {own}");
    }
}

#[test]
fn a_navigation_preempts_a_draining_bulk_batch() {
    // One fabric, two sessions: a bulk session loops slow image-heavy page
    // loads at 2 workers (so one pool worker drains most of each batch and has
    // request boundaries to yield at), while the navigating session loads a
    // page whose three critical subresources ride the navigation lane. A bulk
    // worker must park its ticket for the queued navigation work — witnessed
    // by the fabric's preemption counter.
    let fabric = Arc::new(SharedNetwork::new());
    register_nav_world(&fabric, "nav.example");
    register_loader_world(&fabric, "bulk.example", "sid", IMAGES, ORIGINS, |_| {
        Duration::from_micros(500)
    });
    let engine = Arc::new(EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    let stop = AtomicBool::new(false);

    thread::scope(|scope| {
        let storm_fabric = Arc::clone(&fabric);
        let storm_engine: Arc<dyn PolicyEngine> = Arc::clone(&engine) as _;
        let storm_jar = Arc::clone(&jar);
        let stop = &stop;
        scope.spawn(move || {
            let mut browser = Browser::with_network(storm_engine, storm_jar, storm_fabric);
            browser.set_subresource_workers(2);
            while !stop.load(Ordering::Acquire) {
                browser.navigate("http://bulk.example/index.php").unwrap();
            }
        });

        let mut browser = Browser::with_network(
            Arc::clone(&engine) as _,
            Arc::clone(&jar),
            Arc::clone(&fabric),
        );
        browser.set_subresource_workers(8);
        // Navigate until a bulk drain demonstrably yielded; the counter is
        // monotonic, so one observation settles it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while fabric.fetch_pool_preemptions() == 0 && Instant::now() < deadline {
            let page = browser.navigate(NAV_PAGE_URL).unwrap();
            assert!(browser
                .page(page)
                .subresources
                .iter()
                .all(|s| s.error.is_none()));
        }
        stop.store(true, Ordering::Release);
        assert!(
            fabric.fetch_pool_preemptions() >= 1,
            "no bulk worker ever yielded to queued navigation work"
        );
    });
}

#[test]
fn a_navigation_storm_never_starves_the_bulk_lane() {
    // The inverse pressure: a session hammers the navigation lane continuously
    // while the bulk session loads its image page. The anti-starvation credit
    // (one lower-lane ticket per NAVIGATION_CREDIT consecutive navigation
    // pops) plus the submitter-drains-its-own-batch rule mean the bulk loads
    // complete, correctly, in bounded time.
    let fabric = Arc::new(SharedNetwork::new());
    register_nav_world(&fabric, "nav.example");
    register_loader_world(&fabric, "bulk.example", "sid", IMAGES, ORIGINS, |_| {
        Duration::from_micros(300)
    });
    let engine = Arc::new(EscudoEngine::new());
    let jar = Arc::new(SharedCookieJar::new());
    let stop = AtomicBool::new(false);

    thread::scope(|scope| {
        let storm_fabric = Arc::clone(&fabric);
        let storm_engine: Arc<dyn PolicyEngine> = Arc::clone(&engine) as _;
        let storm_jar = Arc::clone(&jar);
        let stop = &stop;
        scope.spawn(move || {
            let mut browser = Browser::with_network(storm_engine, storm_jar, storm_fabric);
            browser.set_subresource_workers(8);
            while !stop.load(Ordering::Acquire) {
                browser.navigate(NAV_PAGE_URL).unwrap();
            }
        });

        let mut browser = Browser::with_network(
            Arc::clone(&engine) as _,
            Arc::clone(&jar),
            Arc::clone(&fabric),
        );
        browser.set_subresource_workers(8);
        for _ in 0..3 {
            let page = browser.navigate("http://bulk.example/index.php").unwrap();
            let page = browser.page(page);
            assert_eq!(page.subresources.len(), IMAGES);
            for (i, outcome) in page.subresources.iter().enumerate() {
                assert!(outcome.succeeded(), "bulk outcome {i} starved: {outcome:?}");
            }
        }
        stop.store(true, Ordering::Release);
    });
}

#[test]
fn prefetch_on_and_off_are_oracle_equivalent() {
    // The scheduler bench's twin-fabric run: the same hub -> item navigation
    // sequence with speculation enabled vs disabled must leave byte-identical
    // sequence-sorted request logs (method, URL, cookie names, status) and
    // identical per-subresource attachments — prefetch may change *when* bytes
    // move, never what ESCUDO decides.
    let report = run_prefetch_oracle(3);
    assert_eq!(report.prefetch_hits, 3, "speculation never engaged");
    assert_eq!(
        report.log_mismatches, 0,
        "prefetch perturbed the request log"
    );
    assert_eq!(
        report.attachment_mismatches, 0,
        "prefetch changed a mediation outcome"
    );
}
