//! End-to-end guarantees of the fault-injection fabric and the resilient
//! fetch path:
//!
//! * a retry reuses the original mediation plan **verbatim** — the faulted
//!   run's request log, attached cookie names and reference-monitor counters
//!   are byte-identical to the fault-free oracle,
//! * the per-origin circuit breaker walks Closed → Open → HalfOpen → Closed
//!   on a [`ManualClock`], with exactly countable trips, fast-fails, probes
//!   and recoveries,
//! * an injected **panic** in the middle of a pooled batch is contained to
//!   its own slot, releases its claim ticket (the pool survives for the next
//!   batch) and never widens the batch beyond its parallelism bound, and
//! * a subresource whose origin never heals **degrades** into its outcome's
//!   `error` field with the full retry budget spent — the page still loads.
//!
//! The oracle and breaker drills are `escudo_bench::fault`'s — the same code
//! the `fault_concurrent` CI gate drives — so the bench and these tests
//! cannot silently diverge in what they validate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use escudo::browser::{Browser, PolicyMode};
use escudo::core::ManualClock;
use escudo::net::{
    BreakerPhase, FaultPlan, FetchPolicy, NetError, Priority, Request, Response, SharedNetwork,
};
use escudo_bench::fault::{run_breaker_drill, run_retry_oracle};
use escudo_bench::loader::register_loader_world;

#[test]
fn a_retry_reuses_the_mediation_plan_verbatim() {
    for mode in [PolicyMode::SameOriginOnly, PolicyMode::Escudo] {
        let oracle = run_retry_oracle(mode);
        assert!(
            oracle.logs_identical,
            "{mode}: faulted run's request log diverged from the fault-free oracle"
        );
        assert!(
            oracle.attachments_identical,
            "{mode}: faulted run attached different cookies"
        );
        assert!(
            oracle.mediation_identical,
            "{mode}: retries re-mediated — check/denial counts moved"
        );
        assert_eq!(oracle.clean_retries, 0);
        assert!(oracle.faulted_retries > 0, "{mode}: no retry was exercised");
        assert_eq!(oracle.faulted_retries, oracle.faulted_faults);
    }
}

#[test]
fn the_breaker_walks_its_phases_on_a_manual_clock() {
    let fabric = SharedNetwork::new();
    let clock = Arc::new(ManualClock::new());
    fabric.set_clock(clock.clone());
    fabric.register("http://api.example", |_req: &Request| {
        Response::ok_text("pong")
    });
    let request = || Request::get("http://api.example/ping").unwrap();
    let origin = request().url.origin();
    let policy = FetchPolicy::disabled().with_breaker(2, 500_000_000);

    // No breaker exists until a breaker-carrying policy touches the origin.
    assert_eq!(fabric.breaker_phase(&origin), None);

    fabric.inject_fault("http://api.example", FaultPlan::new().timeout());
    assert!(fabric.dispatch_with_policy(request(), &policy).is_err());
    assert_eq!(fabric.breaker_phase(&origin), Some(BreakerPhase::Closed));
    assert!(fabric.dispatch_with_policy(request(), &policy).is_err());
    assert_eq!(fabric.breaker_phase(&origin), Some(BreakerPhase::Open));
    assert_eq!(fabric.breaker_trips(), 1);

    // Open: fail fast with the remaining cooldown, without dispatching.
    let faults_before = fabric.faults_injected();
    match fabric.dispatch_with_policy(request(), &policy) {
        Err(NetError::CircuitOpen { cooldown_ns, .. }) => {
            assert_eq!(cooldown_ns, 500_000_000);
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(fabric.faults_injected(), faults_before);
    assert_eq!(fabric.breaker_fast_fails(), 1);

    // Cooldown elapses on the manual clock; the healed probe re-closes it.
    clock.advance(Duration::from_millis(500));
    fabric.clear_fault("http://api.example");
    assert!(fabric.dispatch_with_policy(request(), &policy).is_ok());
    assert_eq!(fabric.breaker_phase(&origin), Some(BreakerPhase::Closed));
    assert_eq!(fabric.breaker_probes(), 1);
    assert_eq!(fabric.breaker_recoveries(), 1);

    // The full drill (including a failed probe's re-open and the deadline
    // arithmetic) lands on its exact constants.
    assert!(run_breaker_drill().exact());
}

#[test]
fn a_panic_mid_batch_is_contained_released_and_width_bounded() {
    let fabric = Arc::new(SharedNetwork::new());
    let in_flight = Arc::new(AtomicUsize::new(0));
    let high_water = Arc::new(AtomicUsize::new(0));
    let (flight, water) = (Arc::clone(&in_flight), Arc::clone(&high_water));
    fabric.register("http://ok.example", move |req: &Request| {
        let now = flight.fetch_add(1, Ordering::SeqCst) + 1;
        water.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(Duration::from_micros(200));
        flight.fetch_sub(1, Ordering::SeqCst);
        Response::ok_text(format!("ok {}", req.url.path()))
    });
    fabric.register("http://boom.example", |_req: &Request| {
        unreachable!("faulted before the handler")
    });
    fabric.inject_fault("http://boom.example", FaultPlan::new().panicking());

    let policy = FetchPolicy::disabled()
        .with_max_retries(1)
        .with_backoff_base_ns(1_000);
    let requests: Vec<Request> = (0..6)
        .map(|i| {
            let host = if i % 3 == 1 { "boom" } else { "ok" };
            Request::get(&format!("http://{host}.example/r{i}")).unwrap()
        })
        .collect();
    let base = fabric.reserve_sequences(requests.len() as u64);
    let results = fabric.dispatch_batch_with_policy(base, requests, 2, Priority::Bulk, &policy);

    for (i, (outcome, retries)) in results.iter().enumerate() {
        if i % 3 == 1 {
            assert!(
                matches!(outcome, Err(NetError::FetchPanicked { .. })),
                "slot {i}: expected a contained panic, got {outcome:?}"
            );
            assert_eq!(
                *retries, 1,
                "slot {i}: the panic is transient — one retry owed"
            );
        } else {
            assert!(
                outcome.is_ok(),
                "slot {i}: healthy slot failed: {outcome:?}"
            );
            assert_eq!(*retries, 0);
        }
    }
    assert!(
        high_water.load(Ordering::SeqCst) <= 2,
        "panic containment must not widen the batch past its parallelism bound"
    );

    // Claim tickets were released: a follow-up batch on the same pool drains.
    let follow_up: Vec<Request> = (0..4)
        .map(|i| Request::get(&format!("http://ok.example/again{i}")).unwrap())
        .collect();
    let base = fabric.reserve_sequences(follow_up.len() as u64);
    let results = fabric.dispatch_batch(base, follow_up, 2, Priority::Bulk);
    assert!(results.iter().all(Result::is_ok));
    assert!(high_water.load(Ordering::SeqCst) <= 2);
}

#[test]
fn an_unhealed_subresource_degrades_into_its_outcome_with_the_budget_spent() {
    let fabric = Arc::new(SharedNetwork::new());
    register_loader_world(&fabric, "site.example", "sid", 4, 2, |_| Duration::ZERO);
    fabric.inject_fault("http://img0.site.example", FaultPlan::new().timeout());

    let mut browser = Browser::with_network(
        escudo::core::engine_for_mode(PolicyMode::Escudo),
        Arc::new(escudo::net::SharedCookieJar::new()),
        Arc::clone(&fabric),
    );
    browser.set_fetch_policy(
        FetchPolicy::disabled()
            .with_max_retries(2)
            .with_backoff_base_ns(1_000),
    );

    let page = browser.navigate("http://site.example/index.php").unwrap();
    let page = browser.page(page);
    assert_eq!(page.subresources.len(), 4);
    for outcome in &page.subresources {
        if outcome.url.origin().to_string().contains("img0") {
            let error = outcome.error.as_deref().expect("faulted slot must degrade");
            assert!(error.contains("timed out"), "unexpected error: {error}");
            assert_eq!(outcome.status, None);
            assert_eq!(outcome.retries, 2, "the whole retry budget must be spent");
        } else {
            assert!(outcome.succeeded(), "healthy origin failed: {outcome:?}");
            assert_eq!(outcome.retries, 0);
        }
    }
    // Faulted dispatches are never logged: the log holds only the page fetch
    // and the two healthy images.
    assert_eq!(fabric.log().len(), 3);
}
